//! Typed request/response/error surface of the serving API.
//!
//! Every request body is parsed through [`smartsage_core::json`] into a
//! typed request, and every failure — malformed JSON, a bad field, a
//! node the store does not hold, an overflowing queue — is a
//! [`ServeError`] variant with a fixed HTTP status and a JSON body.
//! Nothing in the request path unwraps: a client can only ever observe
//! a typed status, never a dead worker.

use smartsage_core::json::{self, JsonValue};
use smartsage_gnn::Fanouts;
use smartsage_graph::NodeId;
use smartsage_store::StoreError;
use std::fmt;

/// Upper bound on target nodes in one request — enough for any
/// mini-batch the paper runs, small enough that one request cannot
/// monopolize the batcher window.
pub const MAX_REQUEST_NODES: usize = 4096;

/// Upper bound on hops a sample request may ask for.
pub const MAX_REQUEST_HOPS: usize = 4;

/// A typed serving failure, each variant carrying its HTTP status.
#[derive(Debug, Clone)]
pub enum ServeError {
    /// The request body is not valid JSON (`400`).
    BadJson(json::JsonError),
    /// The body is valid JSON but not a valid request (`400`).
    BadRequest(String),
    /// A requested node id is outside the store's population (`422`).
    NodeOutOfRange {
        /// The offending node id.
        node: u32,
        /// Nodes the store holds.
        num_nodes: usize,
    },
    /// The request body exceeds the configured limit (`413`).
    BodyTooLarge {
        /// Declared body length.
        got: usize,
        /// Configured limit.
        limit: usize,
    },
    /// The admission queue is at capacity (`429`) — back off and retry.
    QueueFull {
        /// The configured queue depth that was exhausted.
        depth: usize,
    },
    /// The server is draining for shutdown (`503`).
    ShuttingDown,
    /// No route for this method + path (`404`).
    NotFound,
    /// The path exists but not for this method (`405`).
    MethodNotAllowed,
    /// A store/model failure that is not the client's fault (`500`).
    Internal(String),
}

impl ServeError {
    /// The HTTP status this error maps to.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::BadJson(_) | ServeError::BadRequest(_) => 400,
            ServeError::NotFound => 404,
            ServeError::MethodNotAllowed => 405,
            ServeError::BodyTooLarge { .. } => 413,
            ServeError::NodeOutOfRange { .. } => 422,
            ServeError::QueueFull { .. } => 429,
            ServeError::Internal(_) => 500,
            ServeError::ShuttingDown => 503,
        }
    }

    /// A stable machine-readable label for the error kind.
    pub fn label(&self) -> &'static str {
        match self {
            ServeError::BadJson(_) => "bad_json",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::NodeOutOfRange { .. } => "node_out_of_range",
            ServeError::BodyTooLarge { .. } => "body_too_large",
            ServeError::QueueFull { .. } => "queue_full",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::NotFound => "not_found",
            ServeError::MethodNotAllowed => "method_not_allowed",
            ServeError::Internal(_) => "internal",
        }
    }

    /// The JSON error body: `{"error": label, "message": human text}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"error\":{},\"message\":{}}}",
            json::escape_string(self.label()),
            json::escape_string(&self.to_string())
        )
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadJson(e) => write!(f, "{e}"),
            ServeError::BadRequest(msg) => write!(f, "{msg}"),
            ServeError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range for a {num_nodes}-node store")
            }
            ServeError::BodyTooLarge { got, limit } => {
                write!(
                    f,
                    "request body of {got} bytes exceeds the {limit}-byte limit"
                )
            }
            ServeError::QueueFull { depth } => {
                write!(
                    f,
                    "admission queue full ({depth} requests pending); retry later"
                )
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::NotFound => write!(f, "no such route"),
            ServeError::MethodNotAllowed => write!(f, "method not allowed for this route"),
            ServeError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> ServeError {
        match e {
            // The one store failure that is the client's fault.
            StoreError::NodeOutOfRange { node, num_nodes } => ServeError::NodeOutOfRange {
                node: node.raw(),
                num_nodes,
            },
            other => ServeError::Internal(other.to_string()),
        }
    }
}

/// What a request wants done once it clears the batcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ApiRequest {
    /// `POST /v1/sample`: k-hop neighbor sampling only.
    Sample(SampleRequest),
    /// `POST /v1/infer`: sample + feature gather + GraphSage forward.
    Infer(SampleRequest),
}

impl ApiRequest {
    /// The sampling parameters, whichever the verb.
    pub fn sample(&self) -> &SampleRequest {
        match self {
            ApiRequest::Sample(s) | ApiRequest::Infer(s) => s,
        }
    }
}

/// Parsed sampling parameters shared by both verbs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleRequest {
    /// Target node ids.
    pub nodes: Vec<NodeId>,
    /// Seed of the request's private position RNG (default 0).
    pub seed: u64,
    /// Per-hop fan-outs; `None` uses the server default.
    pub fanouts: Option<Fanouts>,
}

impl SampleRequest {
    /// Parses a request body.
    ///
    /// Accepted shape: `{"nodes": [id, ...], "seed": n?, "fanouts":
    /// [k, ...]?}`. Every violation is a typed 400; node ids beyond
    /// the store population are caught later (422) where the
    /// population is known.
    pub fn parse(body: &str) -> Result<SampleRequest, ServeError> {
        let doc = json::parse(body).map_err(ServeError::BadJson)?;
        if !matches!(doc, JsonValue::Obj(_)) {
            return Err(ServeError::BadRequest(
                "request body must be a JSON object".to_string(),
            ));
        }
        let nodes_doc = doc
            .get("nodes")
            .ok_or_else(|| ServeError::BadRequest("missing required field 'nodes'".to_string()))?;
        let items = nodes_doc.as_array().ok_or_else(|| {
            ServeError::BadRequest("'nodes' must be an array of node ids".to_string())
        })?;
        if items.is_empty() {
            return Err(ServeError::BadRequest(
                "'nodes' must name at least one node".to_string(),
            ));
        }
        if items.len() > MAX_REQUEST_NODES {
            return Err(ServeError::BadRequest(format!(
                "'nodes' holds {} ids; the per-request limit is {MAX_REQUEST_NODES}",
                items.len()
            )));
        }
        let mut nodes = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            let id = item
                .as_u64()
                .filter(|&v| v <= u32::MAX as u64)
                .ok_or_else(|| {
                    ServeError::BadRequest(format!(
                        "'nodes[{i}]' must be an unsigned 32-bit node id"
                    ))
                })?;
            nodes.push(NodeId::new(id as u32));
        }
        let seed = match doc.get("seed") {
            None => 0,
            Some(v) => v.as_u64().ok_or_else(|| {
                ServeError::BadRequest("'seed' must be an unsigned integer".to_string())
            })?,
        };
        let fanouts = match doc.get("fanouts") {
            None => None,
            Some(v) => {
                let hops = v.as_array().ok_or_else(|| {
                    ServeError::BadRequest(
                        "'fanouts' must be an array of per-hop counts".to_string(),
                    )
                })?;
                if hops.is_empty() || hops.len() > MAX_REQUEST_HOPS {
                    return Err(ServeError::BadRequest(format!(
                        "'fanouts' must name 1..={MAX_REQUEST_HOPS} hops"
                    )));
                }
                let mut per_hop = Vec::with_capacity(hops.len());
                for (i, h) in hops.iter().enumerate() {
                    let f = h
                        .as_u64()
                        .filter(|&v| (1..=1024).contains(&v))
                        .ok_or_else(|| {
                            ServeError::BadRequest(format!(
                                "'fanouts[{i}]' must be an integer in 1..=1024"
                            ))
                        })?;
                    per_hop.push(f as usize);
                }
                Some(Fanouts::new(per_hop))
            }
        };
        Ok(SampleRequest {
            nodes,
            seed,
            fanouts,
        })
    }
}

/// Renders a sampled subgraph as the `/v1/sample` response body.
pub fn sample_response(batch: &smartsage_gnn::SampledBatch) -> String {
    let mut out = String::with_capacity(64 + batch.num_sampled() as usize * 8);
    out.push_str("{\"targets\":");
    push_nodes(&mut out, &batch.targets);
    out.push_str(",\"hops\":[");
    for (i, hop) in batch.hops.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"fanout\":{},\"neighbors\":", hop.fanout));
        push_nodes(&mut out, &hop.neighbors);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Renders per-target logits and predictions as the `/v1/infer`
/// response body. `logits` is row-major, one row per target.
pub fn infer_response(
    targets: &[NodeId],
    logits: impl Iterator<Item = Vec<f32>>,
    predictions: &[usize],
) -> String {
    let mut out = String::with_capacity(64 + targets.len() * 64);
    out.push_str("{\"targets\":");
    push_nodes(&mut out, targets);
    out.push_str(",\"logits\":[");
    for (i, row) in logits.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        for (j, v) in row.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            // f32 → f64 is exact; the shortest-round-trip f64 form
            // re-parses to the same bits, keeping responses
            // bit-comparable across serial and coalesced execution.
            out.push_str(&json::number(f64::from(*v)));
        }
        out.push(']');
    }
    out.push_str("],\"predictions\":[");
    for (i, p) in predictions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&p.to_string());
    }
    out.push_str("]}");
    out
}

fn push_nodes(out: &mut String, nodes: &[NodeId]) {
    out.push('[');
    for (i, n) in nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&n.raw().to_string());
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request() {
        let r = SampleRequest::parse(r#"{"nodes":[3,1,4],"seed":9,"fanouts":[5,2]}"#).unwrap();
        assert_eq!(
            r.nodes,
            vec![NodeId::new(3), NodeId::new(1), NodeId::new(4)]
        );
        assert_eq!(r.seed, 9);
        assert_eq!(r.fanouts.unwrap().as_slice(), &[5, 2]);
    }

    #[test]
    fn seed_and_fanouts_default() {
        let r = SampleRequest::parse(r#"{"nodes":[0]}"#).unwrap();
        assert_eq!(r.seed, 0);
        assert!(r.fanouts.is_none());
    }

    #[test]
    fn malformed_json_is_a_typed_400_never_a_panic() {
        for bad in ["", "{", "not json", "{\"nodes\":[1,]}", "\"str\""] {
            let e = SampleRequest::parse(bad).unwrap_err();
            assert_eq!(e.status(), 400, "{bad}");
        }
    }

    #[test]
    fn invalid_fields_are_typed_400s_naming_the_field() {
        let cases = [
            (r#"{"seed":1}"#, "nodes"),
            (r#"{"nodes":[]}"#, "nodes"),
            (r#"{"nodes":"x"}"#, "nodes"),
            (r#"{"nodes":[1.5]}"#, "nodes[0]"),
            (r#"{"nodes":[-1]}"#, "nodes[0]"),
            (r#"{"nodes":[4294967296]}"#, "nodes[0]"),
            (r#"{"nodes":[1],"seed":-2}"#, "seed"),
            (r#"{"nodes":[1],"fanouts":5}"#, "fanouts"),
            (r#"{"nodes":[1],"fanouts":[]}"#, "fanouts"),
            (r#"{"nodes":[1],"fanouts":[0]}"#, "fanouts[0]"),
            (r#"{"nodes":[1],"fanouts":[1,1,1,1,1]}"#, "fanouts"),
        ];
        for (body, field) in cases {
            let e = SampleRequest::parse(body).unwrap_err();
            assert_eq!(e.status(), 400, "{body}");
            assert!(e.to_string().contains(field), "{body}: {e}");
        }
    }

    #[test]
    fn oversized_node_lists_are_rejected() {
        let body = format!(
            "{{\"nodes\":[{}]}}",
            (0..=MAX_REQUEST_NODES)
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        let e = SampleRequest::parse(&body).unwrap_err();
        assert_eq!(e.status(), 400);
    }

    #[test]
    fn store_errors_map_to_statuses() {
        let e: ServeError = StoreError::NodeOutOfRange {
            node: NodeId::new(5),
            num_nodes: 3,
        }
        .into();
        assert_eq!(e.status(), 422);
        assert!(e.to_string().contains('5'), "{e}");
        let e: ServeError = StoreError::BadBuffer {
            expected: 1,
            actual: 2,
        }
        .into();
        assert_eq!(e.status(), 500);
    }

    #[test]
    fn cloned_errors_keep_status_label_and_body() {
        // The merged-execution path hands one failure to every infer
        // request in the group by cloning it; the clone must be
        // indistinguishable on the wire.
        let errors = [
            ServeError::BadJson(json::parse("{").unwrap_err()),
            ServeError::NodeOutOfRange {
                node: 9,
                num_nodes: 3,
            },
            ServeError::Internal("gather failed".to_string()),
        ];
        for e in &errors {
            let c = e.clone();
            assert_eq!(c.status(), e.status());
            assert_eq!(c.label(), e.label());
            assert_eq!(c.to_json(), e.to_json());
        }
    }

    #[test]
    fn error_bodies_are_json_with_label_and_message() {
        let e = ServeError::QueueFull { depth: 8 };
        let body = e.to_json();
        let doc = json::parse(&body).unwrap();
        assert_eq!(
            doc.get("error").and_then(JsonValue::as_str),
            Some("queue_full")
        );
        assert!(doc
            .get("message")
            .and_then(JsonValue::as_str)
            .unwrap()
            .contains('8'));
    }

    #[test]
    fn responses_are_valid_json() {
        use smartsage_gnn::sampler::{HopSample, SampledBatch};
        let batch = SampledBatch {
            targets: vec![NodeId::new(1), NodeId::new(2)],
            hops: vec![HopSample {
                fanout: 2,
                parents: vec![NodeId::new(1), NodeId::new(2)],
                neighbors: vec![NodeId::new(3); 4],
            }],
        };
        let doc = json::parse(&sample_response(&batch)).unwrap();
        assert_eq!(
            doc.get("targets")
                .and_then(JsonValue::as_array)
                .unwrap()
                .len(),
            2
        );
        let infer = infer_response(
            &batch.targets,
            vec![vec![0.5f32, -1.0], vec![2.0, 3.5]].into_iter(),
            &[1, 1],
        );
        let doc = json::parse(&infer).unwrap();
        assert_eq!(
            doc.get("logits")
                .and_then(JsonValue::as_array)
                .unwrap()
                .len(),
            2
        );
        assert_eq!(
            doc.get("predictions")
                .and_then(JsonValue::as_array)
                .unwrap()
                .len(),
            2
        );
    }
}
