//! The concurrency regression test from the issue: eight closed-loop
//! clients hammering a coalescing server must get **bit-identical**
//! samples and logits to the same requests executed serially, one at a
//! time, with exact per-handle store accounting on both sides.

use smartsage_gnn::Fanouts;
use smartsage_serve::batcher::BatchPolicy;
use smartsage_serve::client::HttpClient;
use smartsage_serve::engine::{DatasetConfig, Engine, EngineConfig};
use smartsage_serve::http::{HttpOptions, Server};
use smartsage_store::{StoreKind, TopologyKind};
use std::collections::HashMap;
use std::time::Duration;

const CLIENTS: usize = 8;
const REQUESTS: usize = 15;
const NODES: usize = 600;
const DIM: usize = 8;

fn engine() -> Engine {
    Engine::new(EngineConfig {
        dataset: DatasetConfig {
            nodes: NODES,
            avg_degree: 8.0,
            feature_dim: DIM,
            classes: 4,
            ..DatasetConfig::default()
        },
        // Through real file-backed tiers with a deliberately tiny page
        // cache, so coalescing actually changes the I/O pattern the
        // responses must be invariant to.
        store: StoreKind::File,
        topology: TopologyKind::File,
        fanouts: Fanouts::new(vec![3, 2]),
        hidden: 8,
        cache_pages: 8,
        ..EngineConfig::default()
    })
    .expect("file-tier engine")
}

/// Client `c`'s request `i`: overlapping targets across clients (same
/// `i` means same nodes), unique seed per (client, request), and a
/// sample/infer mix so both response shapes are covered.
fn request_for(client: usize, i: usize) -> (&'static str, String) {
    let targets: Vec<String> = (0..3)
        .map(|j| ((i * 17 + j * 211) % NODES).to_string())
        .collect();
    let body = format!(
        "{{\"nodes\":[{}],\"seed\":{}}}",
        targets.join(","),
        client * 1000 + i
    );
    let path = if (client + i).is_multiple_of(2) {
        "/v1/infer"
    } else {
        "/v1/sample"
    };
    (path, body)
}

#[test]
fn eight_concurrent_clients_match_serial_execution_bit_for_bit() {
    // --- Coalesced: 8 real client threads against one server. --------
    let server = Server::start(
        engine(),
        BatchPolicy {
            window: Duration::from_millis(2),
            max_batch: 64,
            queue_depth: 256,
        },
        HttpOptions::default(),
        "127.0.0.1:0",
    )
    .expect("bind");
    let addr = server.addr();
    let mut workers = Vec::new();
    for client in 0..CLIENTS {
        workers.push(std::thread::spawn(move || {
            let mut conn = HttpClient::connect(addr).expect("connect");
            let mut out = Vec::with_capacity(REQUESTS);
            for i in 0..REQUESTS {
                let (path, body) = request_for(client, i);
                let (status, response) = conn.request("POST", path, Some(&body)).expect("request");
                assert_eq!(status, 200, "{body} -> {response}");
                out.push((body, response));
            }
            out
        }));
    }
    let mut coalesced: HashMap<String, String> = HashMap::new();
    for worker in workers {
        for (body, response) in worker.join().expect("client thread") {
            // Seeds make every body unique, so the map is well-defined.
            assert!(
                coalesced.insert(body, response).is_none(),
                "duplicate request body"
            );
        }
    }
    server.shutdown();
    let shared = server.engine();
    let concurrent = shared.lock().expect("engine");

    // --- Serial: a fresh engine replays the same bodies one at a time.
    let serial_server = Server::start(
        engine(),
        BatchPolicy::serial(),
        HttpOptions::default(),
        "127.0.0.1:0",
    )
    .expect("bind serial");
    let mut conn = HttpClient::connect(serial_server.addr()).expect("connect serial");
    let mut serial: HashMap<String, String> = HashMap::new();
    for client in 0..CLIENTS {
        for i in 0..REQUESTS {
            let (path, body) = request_for(client, i);
            let (status, response) = conn.request("POST", path, Some(&body)).expect("request");
            assert_eq!(status, 200, "{body} -> {response}");
            serial.insert(body, response);
        }
    }
    serial_server.shutdown();
    let shared = serial_server.engine();
    let serial_engine = shared.lock().expect("serial engine");

    // --- Bit-identity: every sample and every logit byte matches. ----
    assert_eq!(coalesced.len(), serial.len());
    for (body, serial_response) in &serial {
        assert_eq!(
            coalesced.get(body),
            Some(serial_response),
            "response diverged under concurrency for {body}"
        );
    }

    // --- Exact per-handle stats on both engines. ----------------------
    let total = (CLIENTS * REQUESTS) as u64;
    assert_eq!(concurrent.counters().requests, total);
    assert_eq!(serial_engine.counters().requests, total);
    assert_eq!(
        concurrent.counters().sample_requests + concurrent.counters().infer_requests,
        total
    );
    assert_eq!(
        concurrent.counters().sample_requests,
        serial_engine.counters().sample_requests
    );
    // Serial = one merged batch per request, nothing coalesced.
    assert_eq!(serial_engine.counters().merged_batches, total);
    assert_eq!(serial_engine.counters().coalesced_requests, 0);
    assert!(concurrent.counters().merged_batches <= total);
    // Topology reads are fully determined per request (targets + seed),
    // so the totals are order- and merge-independent.
    assert_eq!(
        concurrent.topology_stats().nodes_gathered,
        serial_engine.topology_stats().nodes_gathered
    );
    // The feature half dedups within merged windows: never more nodes
    // than serial, and both sides ship exactly 4*dim bytes per node.
    let (cs, ss) = (concurrent.store_stats(), serial_engine.store_stats());
    assert!(cs.nodes_gathered <= ss.nodes_gathered, "{cs:?} vs {ss:?}");
    assert_eq!(cs.feature_bytes, cs.nodes_gathered * (DIM as u64) * 4);
    assert_eq!(ss.feature_bytes, ss.nodes_gathered * (DIM as u64) * 4);
}
