//! End-to-end tests over real TCP: every route, every typed error
//! status, and graceful shutdown — the request path must never panic,
//! it answers with typed JSON errors instead.

use smartsage_core::json;
use smartsage_gnn::Fanouts;
use smartsage_serve::batcher::BatchPolicy;
use smartsage_serve::client::{oneshot, HttpClient};
use smartsage_serve::engine::{DatasetConfig, Engine, EngineConfig};
use smartsage_serve::http::{HttpOptions, Server};
use std::sync::{Arc, Barrier};
use std::time::Duration;

fn tiny_engine() -> Engine {
    Engine::new(EngineConfig {
        dataset: DatasetConfig {
            nodes: 300,
            avg_degree: 8.0,
            feature_dim: 8,
            classes: 4,
            ..DatasetConfig::default()
        },
        fanouts: Fanouts::new(vec![3, 2]),
        hidden: 8,
        ..EngineConfig::default()
    })
    .expect("tiny engine")
}

fn start(policy: BatchPolicy, options: HttpOptions) -> Server {
    Server::start(tiny_engine(), policy, options, "127.0.0.1:0").expect("bind ephemeral port")
}

#[test]
fn health_stats_sample_and_infer_round_trip_on_one_connection() {
    let server = start(BatchPolicy::default(), HttpOptions::default());
    let mut conn = HttpClient::connect(server.addr()).unwrap();

    let (status, body) = conn.request("GET", "/health", None).unwrap();
    assert_eq!(status, 200, "{body}");
    let health = json::parse(&body).expect("health is valid JSON");
    assert_eq!(health.get("status").and_then(|v| v.as_str()), Some("ok"));
    assert_eq!(health.get("nodes").and_then(|v| v.as_u64()), Some(300));

    let (status, body) = conn
        .request("POST", "/v1/sample", Some(r#"{"nodes":[1,2,3],"seed":7}"#))
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let sample = json::parse(&body).expect("sample response is valid JSON");
    let targets = sample.get("targets").and_then(|v| v.as_array()).unwrap();
    assert_eq!(targets.len(), 3);
    assert_eq!(
        sample
            .get("hops")
            .and_then(|v| v.as_array())
            .map(|a| a.len()),
        Some(2)
    );

    let (status, body) = conn
        .request("POST", "/v1/infer", Some(r#"{"nodes":[4,5],"seed":9}"#))
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let infer = json::parse(&body).expect("infer response is valid JSON");
    assert_eq!(
        infer
            .get("logits")
            .and_then(|v| v.as_array())
            .map(|a| a.len()),
        Some(2)
    );
    assert_eq!(
        infer
            .get("predictions")
            .and_then(|v| v.as_array())
            .map(|a| a.len()),
        Some(2)
    );

    let (status, body) = conn.request("GET", "/stats", None).unwrap();
    assert_eq!(status, 200, "{body}");
    let stats = json::parse(&body).expect("stats is valid JSON");
    let service = stats.get("service").unwrap();
    assert_eq!(service.get("requests").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(
        service.get("sample_requests").and_then(|v| v.as_u64()),
        Some(1)
    );
    assert_eq!(
        service.get("infer_requests").and_then(|v| v.as_u64()),
        Some(1)
    );
    // The infer request gathered features, so the store tier moved bytes.
    let store = stats.get("store").unwrap();
    assert!(store.get("feature_bytes").and_then(|v| v.as_u64()).unwrap() > 0);
    server.shutdown();
}

#[test]
fn malformed_json_is_a_typed_400() {
    let server = start(BatchPolicy::default(), HttpOptions::default());
    for bad in [
        "{nodes:[1]}",
        "",
        "[1,2",
        r#"{"nodes":"zero"}"#,
        r#"{"nodes":[1],"seed":-3}"#,
    ] {
        let (status, body) = oneshot(server.addr(), "POST", "/v1/sample", Some(bad)).unwrap();
        assert_eq!(status, 400, "body {bad:?} -> {body}");
        let err = json::parse(&body).expect("error body is valid JSON");
        assert!(
            err.get("error").and_then(|v| v.as_str()).is_some(),
            "{body}"
        );
    }
    server.shutdown();
}

#[test]
fn out_of_range_node_is_a_422_naming_the_id() {
    let server = start(BatchPolicy::default(), HttpOptions::default());
    let (status, body) = oneshot(
        server.addr(),
        "POST",
        "/v1/sample",
        Some(r#"{"nodes":[999999]}"#),
    )
    .unwrap();
    assert_eq!(status, 422, "{body}");
    let err = json::parse(&body).expect("error body is valid JSON");
    assert_eq!(
        err.get("error").and_then(|v| v.as_str()),
        Some("node_out_of_range")
    );
    let message = err.get("message").and_then(|v| v.as_str()).unwrap();
    assert!(message.contains("999999"), "{message}");
    assert!(message.contains("300"), "{message}");
    server.shutdown();
}

#[test]
fn oversized_body_is_a_413_on_the_declared_length() {
    let server = start(
        BatchPolicy::default(),
        HttpOptions {
            workers: 2,
            max_body_bytes: 64,
        },
    );
    let big = format!(r#"{{"nodes":[{}]}}"#, vec!["1"; 200].join(","));
    let (status, body) = oneshot(server.addr(), "POST", "/v1/sample", Some(&big)).unwrap();
    assert_eq!(status, 413, "{body}");
    let err = json::parse(&body).expect("error body is valid JSON");
    assert_eq!(
        err.get("error").and_then(|v| v.as_str()),
        Some("body_too_large")
    );
    assert!(
        err.get("message")
            .and_then(|v| v.as_str())
            .unwrap()
            .contains("64-byte limit"),
        "{body}"
    );
    server.shutdown();
}

#[test]
fn unknown_routes_404_and_wrong_methods_405() {
    let server = start(BatchPolicy::default(), HttpOptions::default());
    let (status, body) = oneshot(server.addr(), "GET", "/nope", None).unwrap();
    assert_eq!(status, 404, "{body}");
    assert_eq!(
        json::parse(&body)
            .unwrap()
            .get("error")
            .and_then(|v| v.as_str()),
        Some("not_found")
    );
    for (method, path) in [
        ("GET", "/v1/sample"),
        ("DELETE", "/health"),
        ("POST", "/stats"),
    ] {
        let (status, body) = oneshot(server.addr(), method, path, None).unwrap();
        assert_eq!(status, 405, "{method} {path} -> {body}");
        assert_eq!(
            json::parse(&body)
                .unwrap()
                .get("error")
                .and_then(|v| v.as_str()),
            Some("method_not_allowed")
        );
    }
    server.shutdown();
}

#[test]
fn queue_overflow_is_a_typed_429() {
    // Capacity-1 queue behind a long window: a synchronized burst of 8
    // must see some requests admitted and the rest bounced as 429s.
    let server = Arc::new(start(
        BatchPolicy {
            window: Duration::from_millis(300),
            max_batch: 1,
            queue_depth: 1,
        },
        HttpOptions::default(),
    ));
    let barrier = Arc::new(Barrier::new(8));
    let mut workers = Vec::new();
    for client in 0..8 {
        let server = Arc::clone(&server);
        let barrier = Arc::clone(&barrier);
        workers.push(std::thread::spawn(move || {
            let body = format!(r#"{{"nodes":[{client}],"seed":{client}}}"#);
            barrier.wait();
            let (status, body) = oneshot(server.addr(), "POST", "/v1/sample", Some(&body)).unwrap();
            (status, body)
        }));
    }
    let outcomes: Vec<(u16, String)> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();
    let ok = outcomes.iter().filter(|(s, _)| *s == 200).count();
    let rejected = outcomes.iter().filter(|(s, _)| *s == 429).count();
    assert!(ok >= 1, "no request got through: {outcomes:?}");
    assert!(rejected >= 1, "no request was bounced: {outcomes:?}");
    assert_eq!(ok + rejected, 8, "unexpected statuses: {outcomes:?}");
    for (status, body) in &outcomes {
        if *status == 429 {
            let err = json::parse(body).expect("429 body is valid JSON");
            assert_eq!(
                err.get("error").and_then(|v| v.as_str()),
                Some("queue_full")
            );
            assert!(
                err.get("message")
                    .and_then(|v| v.as_str())
                    .unwrap()
                    .contains("retry later"),
                "{body}"
            );
        }
    }
    server.shutdown();
}

#[test]
fn shutdown_endpoint_releases_wait_and_drains() {
    let server = Arc::new(start(BatchPolicy::default(), HttpOptions::default()));
    let waiter = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            server.wait();
            server.shutdown();
        })
    };
    // Work lands normally, then the shutdown request is acknowledged.
    let mut conn = HttpClient::connect(server.addr()).unwrap();
    let (status, _) = conn
        .request("POST", "/v1/sample", Some(r#"{"nodes":[1]}"#))
        .unwrap();
    assert_eq!(status, 200);
    let (status, body) = conn.request("POST", "/v1/shutdown", None).unwrap();
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("shutting down"), "{body}");
    waiter
        .join()
        .expect("wait() returned after the endpoint fired");
    // The drained server is really gone: fresh requests cannot complete.
    assert!(oneshot(server.addr(), "GET", "/health", None).is_err());
}
