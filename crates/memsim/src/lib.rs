//! CPU memory-hierarchy characterization (paper Fig 5).
//!
//! The paper characterizes in-memory neighbor sampling with Linux `perf`
//! (LLC miss rate) and Intel RDT (DRAM bandwidth utilization), finding 62%
//! average LLC miss rate and only 21% of the 125 GB/s DRAM bandwidth used
//! — the signature of a latency-bound, fine-grained random-access
//! workload. This crate provides the pieces to regenerate that figure
//! from the *actual address trace* of our sampler:
//!
//! * [`cache::SetAssocCache`] — a set-associative, LRU, write-allocate
//!   last-level cache model (Xeon Gold 6242-like defaults),
//! * [`meter::BandwidthMeter`] — achieved-vs-peak DRAM bandwidth
//!   accounting given the miss stream.

#![forbid(unsafe_code)]

pub mod cache;
pub mod meter;

pub use cache::{CacheParams, SetAssocCache};
pub use meter::BandwidthMeter;
