//! Set-associative LLC model.
//!
//! A classic tag-array simulation: physical addresses map to sets by
//! line-index bits; each set holds `associativity` tags with true-LRU
//! replacement. Only residency is tracked (no data), which is all miss
//! rates need.

/// Geometry of the simulated cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Ways per set.
    pub associativity: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u64,
}

impl Default for CacheParams {
    /// Xeon Gold 6242-class LLC: 22 MiB, 11-way, 64 B lines.
    fn default() -> Self {
        CacheParams {
            capacity_bytes: 22 * 1024 * 1024,
            associativity: 11,
            line_bytes: 64,
        }
    }
}

impl CacheParams {
    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        (self.capacity_bytes / (self.line_bytes * self.associativity as u64)).max(1) as usize
    }
}

/// A set-associative cache with true LRU replacement.
///
/// # Example
///
/// ```
/// use smartsage_memsim::{CacheParams, SetAssocCache};
/// let mut c = SetAssocCache::new(CacheParams {
///     capacity_bytes: 4096,
///     associativity: 2,
///     line_bytes: 64,
/// });
/// assert!(!c.access(0));     // cold miss
/// assert!(c.access(32));     // same line: hit
/// assert_eq!(c.misses(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    params: CacheParams,
    num_sets: usize,
    /// tags[set * assoc + way]; u64::MAX = invalid.
    tags: Vec<u64>,
    /// Per-way LRU stamp; larger = more recent.
    stamps: Vec<u64>,
    clock: u64,
    hits: u64,
    misses: u64,
}

const INVALID: u64 = u64::MAX;

impl SetAssocCache {
    /// Builds the cache.
    ///
    /// # Panics
    ///
    /// Panics if the line size is not a power of two or associativity is 0.
    pub fn new(params: CacheParams) -> Self {
        assert!(
            params.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(params.associativity > 0, "associativity must be positive");
        let num_sets = params.num_sets();
        SetAssocCache {
            params,
            num_sets,
            tags: vec![INVALID; num_sets * params.associativity],
            stamps: vec![0; num_sets * params.associativity],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Accesses the line containing `addr`; returns `true` on hit.
    /// Misses allocate (fill) the line, evicting the set's LRU way.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr / self.params.line_bytes;
        let set = (line % self.num_sets as u64) as usize;
        let tag = line / self.num_sets as u64;
        let base = set * self.params.associativity;
        let ways = &mut self.tags[base..base + self.params.associativity];
        // Hit?
        for (w, &t) in ways.iter().enumerate() {
            if t == tag {
                self.stamps[base + w] = self.clock;
                self.hits += 1;
                return true;
            }
        }
        // Miss: fill LRU way.
        self.misses += 1;
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.params.associativity {
            let s = self.stamps[base + w];
            if self.tags[base + w] == INVALID {
                victim = w;
                break;
            }
            if s < oldest {
                oldest = s;
                victim = w;
            }
        }
        self.tags[base + victim] = tag;
        self.stamps[base + victim] = self.clock;
        false
    }

    /// Accesses a byte range, touching every line it spans. Returns the
    /// number of missing lines.
    pub fn access_range(&mut self, addr: u64, bytes: u64) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let first = addr / self.params.line_bytes;
        let last = (addr + bytes - 1) / self.params.line_bytes;
        let mut missed = 0;
        for line in first..=last {
            if !self.access(line * self.params.line_bytes) {
                missed += 1;
            }
        }
        missed
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over all accesses (0.0 when untouched).
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        self.tags.fill(INVALID);
        self.stamps.fill(0);
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets x 2 ways x 64B = 256B.
        SetAssocCache::new(CacheParams {
            capacity_bytes: 256,
            associativity: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.params().num_sets(), 2);
    }

    #[test]
    fn spatial_locality_hits_within_a_line() {
        let mut c = tiny();
        assert!(!c.access(0));
        for offset in 1..64 {
            assert!(c.access(offset), "offset {offset} shares the line");
        }
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 63);
    }

    #[test]
    fn conflict_misses_within_a_set() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even line numbers).
        assert!(!c.access(0));
        assert!(!c.access(2 * 64));
        assert!(!c.access(4 * 64)); // evicts line 0 (LRU)
        assert!(!c.access(0), "line 0 must have been evicted");
        // Line 2*64 was LRU after the previous access evicted line 0? No:
        // after access(4*64), set holds {2,4}; access(0) evicts 2.
        assert!(c.access(4 * 64));
    }

    #[test]
    fn lru_respects_recency() {
        let mut c = tiny();
        c.access(0); // set0: {0}
        c.access(2 * 64); // set0: {0,2}
        c.access(0); // touch 0 -> 2 is LRU
        c.access(4 * 64); // evicts 2
        assert!(c.access(0), "0 must survive");
        assert!(!c.access(2 * 64), "2 must have been evicted");
    }

    #[test]
    fn access_range_spans_lines() {
        let mut c = tiny();
        let missed = c.access_range(60, 8); // straddles lines 0 and 1
        assert_eq!(missed, 2);
        assert_eq!(c.access_range(60, 8), 0);
        assert_eq!(c.access_range(0, 0), 0);
    }

    #[test]
    fn huge_random_stream_misses_mostly() {
        use smartsage_sim::Xoshiro256;
        let mut c = SetAssocCache::new(CacheParams::default());
        let mut rng = Xoshiro256::seed_from_u64(1);
        // 1 GB working set >> 22 MiB cache: expect high miss rate.
        for _ in 0..200_000 {
            c.access(rng.range_u64(1 << 30));
        }
        assert!(c.miss_rate() > 0.9, "miss rate {}", c.miss_rate());
    }

    #[test]
    fn small_working_set_hits_after_warmup() {
        let mut c = SetAssocCache::new(CacheParams::default());
        for round in 0..3 {
            for addr in (0..1_000_000u64).step_by(64) {
                let hit = c.access(addr);
                if round > 0 {
                    assert!(hit, "1 MB working set must fit in 22 MiB LLC");
                }
            }
        }
    }

    #[test]
    fn reset_restores_cold_cache() {
        let mut c = tiny();
        c.access(0);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
        assert!(!c.access(0));
    }
}
