//! DRAM bandwidth accounting for the Fig 5 characterization.
//!
//! Fig 5's right axis reports *achieved / peak* DRAM bandwidth during
//! neighbor sampling. Achieved traffic is the LLC miss stream (line
//! fills); the elapsed time comes from a latency-limited execution model:
//! each miss costs the effective (MLP-overlapped) DRAM latency, each hit
//! a few core cycles, and per-access sampling compute runs concurrently.

use smartsage_sim::SimDuration;

/// Accumulates the memory traffic and time of a characterized region.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthMeter {
    /// Peak DRAM bandwidth (bytes/s), e.g. the paper's 125 GB/s.
    pub peak_bytes_per_sec: f64,
    /// Effective per-miss latency after MLP overlap.
    pub miss_latency: SimDuration,
    /// Per-hit cost (L3 hit latency amortized).
    pub hit_cost: SimDuration,
    /// Cache line size (fill granularity).
    pub line_bytes: u64,
    hits: u64,
    misses: u64,
    workers: u32,
}

impl BandwidthMeter {
    /// Creates a meter with paper-platform defaults: 125 GB/s peak,
    /// 25 ns effective miss latency (90 ns loads overlapped by the
    /// out-of-order window, plus dependent address generation), 6 ns hit
    /// cost, 64 B lines, for a given number of concurrent workers.
    pub fn new(workers: u32) -> Self {
        BandwidthMeter {
            peak_bytes_per_sec: 125_000_000_000.0,
            miss_latency: SimDuration::from_nanos(25),
            hit_cost: SimDuration::from_nanos(6),
            line_bytes: 64,
            hits: 0,
            misses: 0,
            workers: workers.max(1),
        }
    }

    /// Records `hits` cache hits and `misses` misses.
    pub fn record(&mut self, hits: u64, misses: u64) {
        self.hits += hits;
        self.misses += misses;
    }

    /// Elapsed time of the measured region under the latency-limited
    /// model, assuming the access stream is divided evenly across
    /// workers running in parallel.
    pub fn elapsed(&self) -> SimDuration {
        let serial = self.hit_cost.mul_u64(self.hits) + self.miss_latency.mul_u64(self.misses);
        serial.mul_f64(1.0 / self.workers as f64)
    }

    /// Bytes filled from DRAM (miss stream).
    pub fn bytes_filled(&self) -> u64 {
        self.misses * self.line_bytes
    }

    /// Achieved bandwidth as a fraction of peak, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let t = self.elapsed().as_secs_f64();
        if t <= 0.0 {
            return 0.0;
        }
        let achieved = self.bytes_filled() as f64 / t;
        (achieved / self.peak_bytes_per_sec).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_meter_reports_zero() {
        let m = BandwidthMeter::new(1);
        assert_eq!(m.utilization(), 0.0);
        assert_eq!(m.bytes_filled(), 0);
        assert!(m.elapsed().is_zero());
    }

    #[test]
    fn all_miss_stream_utilization() {
        let mut m = BandwidthMeter::new(1);
        m.record(0, 1_000_000);
        // 64 MB over 15 ms = ~4.27 GB/s = ~3.4% of peak.
        let util = m.utilization();
        assert!(util > 0.02 && util < 0.05, "utilization {util}");
    }

    #[test]
    fn workers_scale_throughput() {
        let mut one = BandwidthMeter::new(1);
        let mut twelve = BandwidthMeter::new(12);
        one.record(400_000, 600_000);
        twelve.record(400_000, 600_000);
        assert!((twelve.utilization() / one.utilization() - 12.0).abs() < 0.01);
    }

    #[test]
    fn paper_band_is_reachable() {
        // ~62% miss rate, 12 workers: should land in the paper's 10-40%
        // utilization band.
        let mut m = BandwidthMeter::new(12);
        m.record(380_000, 620_000);
        let util = m.utilization();
        assert!(util > 0.1 && util < 0.5, "utilization {util}");
    }

    #[test]
    fn utilization_is_clamped() {
        let mut m = BandwidthMeter::new(1000);
        m.record(0, 10_000_000);
        assert!(m.utilization() <= 1.0);
    }
}
