//! Sharded stores: the dataset partitioned by node range across N
//! modeled SSDs behind the ordinary store interfaces.
//!
//! SmartSAGE's single-SSD in-storage model is a one-device ceiling;
//! this module lifts it by partitioning the node space into contiguous
//! ranges, one per shard, with each shard backed by its own file — and
//! therefore its own page cache, its own [`smartsage_storage::Ssd`]
//! timing model, and its own ISP cores. A [`ShardedFeatureStore`] /
//! [`ShardedTopology`] then scatter/gathers each batched call:
//!
//! 1. **Scatter** — split the request by shard (a binary search per
//!    node over the contiguous ranges), remembering each element's
//!    original position.
//! 2. **Resolve** — run each shard's sub-batch through that shard's
//!    ordinary single-device store (so all existing coalescing —
//!    [`smartsage_hostio::merge_page_runs`], the ISP cost pass — is
//!    reused unchanged, per device).
//! 3. **Gather** — copy each shard's answers back to the request-order
//!    positions.
//!
//! Because every member store is bit-deterministic and the scatter is a
//! pure function of the node list, the merged answer is bit-identical
//! to the single-shard path *by construction*; the conformance suite
//! (`tests/sharded_store_conformance.rs`) asserts it by measurement.
//!
//! # Shard layout
//!
//! * **Feature shards** hold their range's rows at *local* indices
//!   (global node `start + j` is row `j`), so each shard file is an
//!   ordinary self-contained `SSFEAT01` file of `end − start` rows.
//! * **Graph shards** keep the *global* node count in their header and
//!   a full-length offset array clamped to the shard's edge window, so
//!   each shard file is an ordinary `SSGRPH01` file that answers its
//!   own nodes exactly and reports degree 0 elsewhere (the router never
//!   asks a shard about nodes outside its range). Neighbor ids stay
//!   global — no id translation on the topology axis.
//!
//! A [`ShardManifest`] names the per-shard files and their ranges and
//! validates the whole layout (tiling, on-disk geometry) with typed
//! [`StoreError`]s before anything is read.
//!
//! # Stats scoping
//!
//! The merged [`StoreStats`] keeps the access-level counters
//! (`gathers`, `nodes_gathered`, `feature_bytes`) at the sharded store
//! itself — one per caller-visible call, identical to the unsharded
//! path at any shard count — and sums the I/O-level counters over the
//! members. `shard_stats()` exposes the per-member breakdown; its I/O
//! fields (and `nodes_gathered`/`feature_bytes`) sum exactly to the
//! merged totals, while per-shard `gathers` counts the *sub*-calls
//! routed to that device.

use crate::error::StoreError;
use crate::file::FileStoreOptions;
use crate::graph_file::SharedCsrFile;
use crate::handle::StoreHandle;
use crate::isp::{IspGatherOptions, IspGatherStore};
use crate::isp_topology::IspSampleTopology;
use crate::shared::{SharedFileStore, DEFAULT_CACHE_SHARDS};
use crate::topology::{check_out_len, count_answers, FileTopology, InMemoryTopology};
use crate::{FeatureStore, StoreStats, TopologyStore};
use smartsage_graph::generate::community_of;
use smartsage_graph::{CsrGraph, FeatureTable, NodeId};
use std::io;
use std::path::PathBuf;
use std::sync::Arc;

/// The contiguous node ranges of an N-way partition: an even split
/// with the remainder spread over the first shards, so ranges differ
/// in length by at most one. When `shards > num_nodes` the tail
/// shards are empty — legal, and covered by the conformance suite.
pub fn shard_ranges(num_nodes: usize, shards: usize) -> Vec<(usize, usize)> {
    assert!(shards > 0, "a partition needs at least one shard");
    let base = num_nodes / shards;
    let extra = num_nodes % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Which shard holds global node index `idx`. `ranges` must tile
/// `0..num_nodes` contiguously and `idx` must be below the last end
/// (both enforced before any routing happens).
fn shard_of(ranges: &[(usize, usize)], idx: usize) -> usize {
    ranges.partition_point(|&(_, end)| end <= idx)
}

/// Adds `member`'s I/O-level counters into `total`, leaving the
/// access-level counters (`gathers`, `nodes_gathered`, `feature_bytes`)
/// alone — those are kept once at the sharded store (see the module
/// docs on stats scoping).
fn merge_io(total: &mut StoreStats, member: &StoreStats) {
    total.pages_read += member.pages_read;
    total.bytes_read += member.bytes_read;
    total.page_hits += member.page_hits;
    total.page_misses += member.page_misses;
    total.device_bytes_read += member.device_bytes_read;
    total.host_bytes_transferred += member.host_bytes_transferred;
    total.device_ns += member.device_ns;
}

/// One shard's entry in a [`ShardManifest`]: the per-shard file and the
/// global node range `start..end` it holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardEntry {
    /// The per-shard file.
    pub path: PathBuf,
    /// First global node id the shard holds.
    pub start: usize,
    /// One past the last global node id the shard holds.
    pub end: usize,
}

/// How one axis of a dataset (features or topology) is partitioned
/// across per-shard files. [`ShardManifest::validate`] checks that the
/// ranges tile `0..num_nodes`; the open methods additionally check
/// each file's on-disk geometry against its manifest entry — every
/// failure is a typed [`StoreError`] naming the file and shard index,
/// never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Global node count the shards tile.
    pub num_nodes: usize,
    /// Per-shard files and ranges, in node order.
    pub shards: Vec<ShardEntry>,
}

impl ShardManifest {
    /// The even-split manifest over `paths` (one shard per path),
    /// with ranges from [`shard_ranges`].
    pub fn for_paths(num_nodes: usize, paths: Vec<PathBuf>) -> ShardManifest {
        let ranges = shard_ranges(num_nodes, paths.len().max(1));
        let shards = paths
            .into_iter()
            .zip(ranges)
            .map(|(path, (start, end))| ShardEntry { path, start, end })
            .collect();
        ShardManifest { num_nodes, shards }
    }

    /// The `(start, end)` ranges of the shards, in order.
    pub fn ranges(&self) -> Vec<(usize, usize)> {
        self.shards.iter().map(|e| (e.start, e.end)).collect()
    }

    /// Checks that the shard ranges tile `0..num_nodes` exactly: no
    /// empty manifest, no inverted range, no gap, no overlap, and
    /// endpoints that meet `0` and `num_nodes`.
    pub fn validate(&self) -> Result<(), StoreError> {
        let Some(first) = self.shards.first() else {
            return Err(StoreError::ShardLayout {
                path: PathBuf::from("<empty manifest>"),
                shard: 0,
                reason: "manifest lists no shards".to_string(),
            });
        };
        if first.start != 0 {
            return Err(StoreError::ShardLayout {
                path: first.path.clone(),
                shard: 0,
                reason: format!("first shard starts at node {} instead of 0", first.start),
            });
        }
        let mut expected = 0usize;
        for (i, e) in self.shards.iter().enumerate() {
            if e.start > e.end {
                return Err(StoreError::ShardLayout {
                    path: e.path.clone(),
                    shard: i,
                    reason: format!("inverted range {}..{}", e.start, e.end),
                });
            }
            if e.start != expected {
                let kind = if e.start < expected {
                    "overlaps the previous shard"
                } else {
                    "leaves a gap after the previous shard"
                };
                return Err(StoreError::ShardLayout {
                    path: e.path.clone(),
                    shard: i,
                    reason: format!(
                        "range {}..{} {kind} (previous shard ends at node {expected})",
                        e.start, e.end
                    ),
                });
            }
            expected = e.end;
        }
        if expected != self.num_nodes {
            let last = self.shards.len() - 1;
            return Err(StoreError::ShardLayout {
                path: self.shards[last].path.clone(),
                shard: last,
                reason: format!("shards cover {expected} of {} nodes", self.num_nodes),
            });
        }
        Ok(())
    }

    /// Opens every feature shard file, checking each file's row count
    /// against its manifest range. A missing file is
    /// [`StoreError::ShardMissing`]; a wrong row count is
    /// [`StoreError::ShardGeometry`] — both name the file.
    pub fn open_feature_shards(
        &self,
        opts: FileStoreOptions,
    ) -> Result<Vec<Arc<SharedFileStore>>, StoreError> {
        self.validate()?;
        let mut out = Vec::with_capacity(self.shards.len());
        for (i, e) in self.shards.iter().enumerate() {
            let shared = SharedFileStore::open_with(&e.path, opts, DEFAULT_CACHE_SHARDS)
                .map_err(|err| mark_missing(err, i))?;
            if shared.num_nodes() != e.end - e.start {
                return Err(StoreError::ShardGeometry {
                    path: e.path.clone(),
                    shard: i,
                    reason: format!(
                        "file holds {} rows but the manifest range {}..{} needs {}",
                        shared.num_nodes(),
                        e.start,
                        e.end,
                        e.end - e.start
                    ),
                });
            }
            out.push(Arc::new(shared));
        }
        Ok(out)
    }

    /// Opens every graph shard file, checking each file's global node
    /// count against the manifest. A missing file is
    /// [`StoreError::ShardMissing`]; a wrong node count is
    /// [`StoreError::ShardGeometry`] — both name the file.
    pub fn open_graph_shards(
        &self,
        opts: FileStoreOptions,
    ) -> Result<Vec<Arc<SharedCsrFile>>, StoreError> {
        self.validate()?;
        let mut out = Vec::with_capacity(self.shards.len());
        for (i, e) in self.shards.iter().enumerate() {
            let shared = SharedCsrFile::open_with(&e.path, opts, DEFAULT_CACHE_SHARDS)
                .map_err(|err| mark_missing(err, i))?;
            if shared.num_nodes() != self.num_nodes {
                return Err(StoreError::ShardGeometry {
                    path: e.path.clone(),
                    shard: i,
                    reason: format!(
                        "graph shard header says {} global nodes, manifest says {}",
                        shared.num_nodes(),
                        self.num_nodes
                    ),
                });
            }
            out.push(Arc::new(shared));
        }
        Ok(out)
    }

    /// Opens the manifest as a host-path [`ShardedFeatureStore`].
    pub fn open_features(&self, opts: FileStoreOptions) -> Result<ShardedFeatureStore, StoreError> {
        ShardedFeatureStore::over_files(&self.open_feature_shards(opts)?)
    }

    /// Opens the manifest as a host-path [`ShardedTopology`].
    pub fn open_topology(&self, opts: FileStoreOptions) -> Result<ShardedTopology, StoreError> {
        ShardedTopology::over_files(&self.open_graph_shards(opts)?, &self.ranges())
    }
}

/// Rewrites a not-found open error into [`StoreError::ShardMissing`]
/// so the message carries the shard index; every other error passes
/// through unchanged.
fn mark_missing(err: StoreError, shard: usize) -> StoreError {
    match err {
        StoreError::Io { path, source, .. } if source.kind() == io::ErrorKind::NotFound => {
            StoreError::ShardMissing {
                path,
                shard,
                source,
            }
        }
        other => other,
    }
}

/// Checks that the graph and feature sides of a sharded dataset are
/// partitioned compatibly: same shard count
/// ([`StoreError::ShardCountMismatch`] otherwise) and the feature rows
/// summing to the graph's global node count
/// ([`StoreError::NodeCountMismatch`] otherwise).
pub fn check_sharded_population(
    graphs: &[Arc<SharedCsrFile>],
    features: &[Arc<SharedFileStore>],
) -> Result<(), StoreError> {
    assert!(
        !graphs.is_empty() && !features.is_empty(),
        "a sharded dataset needs at least one shard on each axis"
    );
    if graphs.len() != features.len() {
        return Err(StoreError::ShardCountMismatch {
            graph: graphs[0].path().to_path_buf(),
            graph_shards: graphs.len(),
            features: features[0].path().to_path_buf(),
            feature_shards: features.len(),
        });
    }
    let graph_nodes = graphs[0].num_nodes();
    let feature_nodes: usize = features.iter().map(|f| f.num_nodes()).sum();
    if graph_nodes != feature_nodes {
        return Err(StoreError::NodeCountMismatch {
            graph: graphs[0].path().to_path_buf(),
            graph_nodes,
            features: features[0].path().to_path_buf(),
            feature_nodes,
        });
    }
    Ok(())
}

/// An in-memory feature shard: a contiguous row window onto a shared
/// [`FeatureTable`], addressed by local index — the mem-tier twin of a
/// feature shard file, so the sharded mem store exercises exactly the
/// same scatter/gather routing as the file tiers.
#[derive(Debug)]
struct TableSlice {
    table: Arc<FeatureTable>,
    start: usize,
    len: usize,
    stats: StoreStats,
}

impl FeatureStore for TableSlice {
    fn dim(&self) -> usize {
        self.table.dim()
    }

    fn num_classes(&self) -> usize {
        self.table.num_classes()
    }

    fn num_nodes(&self) -> usize {
        self.len
    }

    fn label(&self, node: NodeId) -> usize {
        self.table
            .label(NodeId::new((self.start + node.index()) as u32))
    }

    fn gather_into(&mut self, nodes: &[NodeId], out: &mut [f32]) -> Result<(), StoreError> {
        let dim = self.table.dim();
        if out.len() != nodes.len() * dim {
            return Err(StoreError::BadBuffer {
                expected: nodes.len() * dim,
                actual: out.len(),
            });
        }
        for &node in nodes {
            if node.index() >= self.len {
                return Err(StoreError::NodeOutOfRange {
                    node,
                    num_nodes: self.len,
                });
            }
        }
        for (row, &node) in out.chunks_exact_mut(dim).zip(nodes) {
            self.table
                .features_into(NodeId::new((self.start + node.index()) as u32), row);
        }
        self.stats.gathers += 1;
        self.stats.nodes_gathered += nodes.len() as u64;
        self.stats.feature_bytes += nodes.len() as u64 * self.table.bytes_per_node();
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
    }
}

/// A [`FeatureStore`] over N per-shard member stores, each holding one
/// contiguous node range at local indices. Gathers are scattered by
/// shard, resolved per device, and merged back in request order —
/// bit-identical to the single-shard path by construction (module
/// docs). The merged stats keep access counters here and sum the
/// members' I/O counters; `shard_stats()` is the per-device breakdown.
#[derive(Debug)]
pub struct ShardedFeatureStore {
    members: Vec<Box<dyn FeatureStore + Send>>,
    ranges: Vec<(usize, usize)>,
    dim: usize,
    num_classes: usize,
    num_nodes: usize,
    access: StoreStats,
}

impl ShardedFeatureStore {
    /// The mem tier: `shards` windows onto one shared table, split by
    /// [`shard_ranges`]. No I/O — but the same routing as the file
    /// tiers, which is what the conformance suite leans on.
    pub fn mem(table: FeatureTable, num_nodes: usize, shards: usize) -> ShardedFeatureStore {
        let table = Arc::new(table);
        let ranges = shard_ranges(num_nodes, shards);
        let dim = table.dim();
        let num_classes = table.num_classes();
        let members = ranges
            .iter()
            .map(|&(start, end)| {
                Box::new(TableSlice {
                    table: Arc::clone(&table),
                    start,
                    len: end - start,
                    stats: StoreStats::default(),
                }) as Box<dyn FeatureStore + Send>
            })
            .collect();
        ShardedFeatureStore {
            members,
            ranges,
            dim,
            num_classes,
            num_nodes,
            access: StoreStats::default(),
        }
    }

    /// The host-path file tier: one scoped [`StoreHandle`] per shard
    /// file. Ranges are derived from the files' cumulative row counts.
    pub fn over_files(files: &[Arc<SharedFileStore>]) -> Result<ShardedFeatureStore, StoreError> {
        ShardedFeatureStore::build_over(files, |f| Box::new(StoreHandle::new(Arc::clone(f))))
    }

    /// The ISP tier: one [`IspGatherStore`] — its own SSD timing model
    /// and ISP cores — per shard file.
    pub fn over_isp(
        files: &[Arc<SharedFileStore>],
        opts: IspGatherOptions,
    ) -> Result<ShardedFeatureStore, StoreError> {
        ShardedFeatureStore::build_over(files, move |f| {
            Box::new(IspGatherStore::over(Arc::clone(f), opts.clone()))
        })
    }

    fn build_over(
        files: &[Arc<SharedFileStore>],
        make: impl Fn(&Arc<SharedFileStore>) -> Box<dyn FeatureStore + Send>,
    ) -> Result<ShardedFeatureStore, StoreError> {
        assert!(
            !files.is_empty(),
            "a sharded store needs at least one shard"
        );
        let dim = files[0].dim();
        let num_classes = files[0].num_classes();
        let mut ranges = Vec::with_capacity(files.len());
        let mut start = 0usize;
        for (i, f) in files.iter().enumerate() {
            if f.dim() != dim || f.num_classes() != num_classes {
                return Err(StoreError::ShardGeometry {
                    path: f.path().to_path_buf(),
                    shard: i,
                    reason: format!(
                        "dim {} / classes {} disagree with shard 0's dim {dim} / classes \
                         {num_classes}",
                        f.dim(),
                        f.num_classes()
                    ),
                });
            }
            ranges.push((start, start + f.num_nodes()));
            start += f.num_nodes();
        }
        let members = files.iter().map(make).collect();
        Ok(ShardedFeatureStore {
            members,
            ranges,
            dim,
            num_classes,
            num_nodes: start,
            access: StoreStats::default(),
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.members.len()
    }

    /// The contiguous `(start, end)` node range of each shard.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }
}

impl FeatureStore for ShardedFeatureStore {
    fn dim(&self) -> usize {
        self.dim
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn label(&self, node: NodeId) -> usize {
        // Labels are a global property (community of the global node
        // id); asking a member would answer in its local id space.
        community_of(node, self.num_classes)
    }

    fn gather_into(&mut self, nodes: &[NodeId], out: &mut [f32]) -> Result<(), StoreError> {
        let dim = self.dim;
        if out.len() != nodes.len() * dim {
            return Err(StoreError::BadBuffer {
                expected: nodes.len() * dim,
                actual: out.len(),
            });
        }
        // Validate the whole batch before any member does I/O, so a
        // failed gather counts nothing anywhere.
        for &node in nodes {
            if node.index() >= self.num_nodes {
                return Err(StoreError::NodeOutOfRange {
                    node,
                    num_nodes: self.num_nodes,
                });
            }
        }
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); self.members.len()];
        let mut locals: Vec<Vec<NodeId>> = vec![Vec::new(); self.members.len()];
        for (pos, &node) in nodes.iter().enumerate() {
            let s = shard_of(&self.ranges, node.index());
            positions[s].push(pos);
            locals[s].push(NodeId::new((node.index() - self.ranges[s].0) as u32));
        }
        let mut shard_rows = Vec::new();
        for (s, member) in self.members.iter_mut().enumerate() {
            if locals[s].is_empty() {
                continue;
            }
            shard_rows.clear();
            shard_rows.resize(locals[s].len() * dim, 0.0);
            member.gather_into(&locals[s], &mut shard_rows)?;
            for (j, &pos) in positions[s].iter().enumerate() {
                out[pos * dim..(pos + 1) * dim]
                    .copy_from_slice(&shard_rows[j * dim..(j + 1) * dim]);
            }
        }
        self.access.gathers += 1;
        self.access.nodes_gathered += nodes.len() as u64;
        self.access.feature_bytes += nodes.len() as u64 * dim as u64 * 4;
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        let mut total = self.access;
        for m in &self.members {
            merge_io(&mut total, &m.stats());
        }
        total
    }

    fn reset_stats(&mut self) {
        self.access = StoreStats::default();
        for m in &mut self.members {
            m.reset_stats();
        }
    }

    fn shard_stats(&self) -> Vec<StoreStats> {
        self.members.iter().map(|m| m.stats()).collect()
    }
}

/// A [`TopologyStore`] over N per-shard member topologies, each
/// answering the nodes of one contiguous range (by *global* id — the
/// topology axis needs no translation, see the module docs on the
/// graph shard layout). Requests scatter by shard, resolve per device,
/// and merge back in request order.
#[derive(Debug)]
pub struct ShardedTopology {
    members: Vec<Box<dyn TopologyStore + Send>>,
    ranges: Vec<(usize, usize)>,
    num_nodes: usize,
    num_edges: u64,
    access: StoreStats,
}

impl ShardedTopology {
    /// The mem tier: `shards` wrappers over one shared graph, split by
    /// [`shard_ranges`]. No I/O, same routing as the file tiers.
    pub fn mem(graph: Arc<CsrGraph>, shards: usize) -> ShardedTopology {
        let num_nodes = graph.num_nodes();
        let num_edges = graph.num_edges();
        let ranges = shard_ranges(num_nodes, shards);
        let members = ranges
            .iter()
            .map(|_| {
                Box::new(InMemoryTopology::from_arc(Arc::clone(&graph)))
                    as Box<dyn TopologyStore + Send>
            })
            .collect();
        ShardedTopology {
            members,
            ranges,
            num_nodes,
            num_edges,
            access: StoreStats::default(),
        }
    }

    /// The host-path file tier: one [`FileTopology`] per shard file.
    /// `ranges` must tile `0..num_nodes` (the manifest's ranges).
    pub fn over_files(
        files: &[Arc<SharedCsrFile>],
        ranges: &[(usize, usize)],
    ) -> Result<ShardedTopology, StoreError> {
        ShardedTopology::build_over(files, ranges, |f| {
            Box::new(FileTopology::new(Arc::clone(f)))
        })
    }

    /// The ISP tier: one [`IspSampleTopology`] — its own SSD timing
    /// model — per shard file.
    pub fn over_isp(
        files: &[Arc<SharedCsrFile>],
        ranges: &[(usize, usize)],
        opts: IspGatherOptions,
    ) -> Result<ShardedTopology, StoreError> {
        ShardedTopology::build_over(files, ranges, move |f| {
            Box::new(IspSampleTopology::over(Arc::clone(f), opts.clone()))
        })
    }

    fn build_over(
        files: &[Arc<SharedCsrFile>],
        ranges: &[(usize, usize)],
        make: impl Fn(&Arc<SharedCsrFile>) -> Box<dyn TopologyStore + Send>,
    ) -> Result<ShardedTopology, StoreError> {
        assert!(
            !files.is_empty(),
            "a sharded topology needs at least one shard"
        );
        assert_eq!(files.len(), ranges.len(), "one node range per shard file");
        let mut expected = 0usize;
        for (i, &(start, end)) in ranges.iter().enumerate() {
            if start != expected || start > end {
                return Err(StoreError::ShardLayout {
                    path: files[i].path().to_path_buf(),
                    shard: i,
                    reason: format!("range {start}..{end} does not continue from node {expected}"),
                });
            }
            expected = end;
        }
        let num_nodes = expected;
        let mut num_edges = 0u64;
        for (i, f) in files.iter().enumerate() {
            if f.num_nodes() != num_nodes {
                return Err(StoreError::ShardGeometry {
                    path: f.path().to_path_buf(),
                    shard: i,
                    reason: format!(
                        "graph shard header says {} global nodes, partition covers {num_nodes}",
                        f.num_nodes()
                    ),
                });
            }
            num_edges += f.num_edges();
        }
        let members = files.iter().map(make).collect();
        Ok(ShardedTopology {
            members,
            ranges: ranges.to_vec(),
            num_nodes,
            num_edges,
            access: StoreStats::default(),
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.members.len()
    }

    /// The contiguous `(start, end)` node range of each shard.
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }

    fn check_nodes<'a>(
        &self,
        nodes: impl IntoIterator<Item = &'a NodeId>,
    ) -> Result<(), StoreError> {
        for &node in nodes {
            if node.index() >= self.num_nodes {
                return Err(StoreError::NodeOutOfRange {
                    node,
                    num_nodes: self.num_nodes,
                });
            }
        }
        Ok(())
    }
}

impl TopologyStore for ShardedTopology {
    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn num_edges(&self) -> u64 {
        self.num_edges
    }

    fn degrees_into(&mut self, nodes: &[NodeId], out: &mut [u64]) -> Result<(), StoreError> {
        check_out_len(nodes.len(), out)?;
        self.check_nodes(nodes)?;
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); self.members.len()];
        let mut routed: Vec<Vec<NodeId>> = vec![Vec::new(); self.members.len()];
        for (pos, &node) in nodes.iter().enumerate() {
            let s = shard_of(&self.ranges, node.index());
            positions[s].push(pos);
            routed[s].push(node);
        }
        let mut answers = Vec::new();
        for (s, member) in self.members.iter_mut().enumerate() {
            if routed[s].is_empty() {
                continue;
            }
            answers.clear();
            answers.resize(routed[s].len(), 0u64);
            member.degrees_into(&routed[s], &mut answers)?;
            for (j, &pos) in positions[s].iter().enumerate() {
                out[pos] = answers[j];
            }
        }
        count_answers(&mut self.access, nodes.len() as u64);
        Ok(())
    }

    fn pick_neighbors_into(
        &mut self,
        picks: &[(NodeId, u64)],
        out: &mut [NodeId],
    ) -> Result<(), StoreError> {
        check_out_len(picks.len(), out)?;
        self.check_nodes(picks.iter().map(|(node, _)| node))?;
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); self.members.len()];
        let mut routed: Vec<Vec<(NodeId, u64)>> = vec![Vec::new(); self.members.len()];
        for (pos, &pick) in picks.iter().enumerate() {
            let s = shard_of(&self.ranges, pick.0.index());
            positions[s].push(pos);
            routed[s].push(pick);
        }
        let mut answers = Vec::new();
        for (s, member) in self.members.iter_mut().enumerate() {
            if routed[s].is_empty() {
                continue;
            }
            answers.clear();
            answers.resize(routed[s].len(), NodeId::default());
            member.pick_neighbors_into(&routed[s], &mut answers)?;
            for (j, &pos) in positions[s].iter().enumerate() {
                out[pos] = answers[j];
            }
        }
        count_answers(&mut self.access, picks.len() as u64);
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        let mut total = self.access;
        for m in &self.members {
            merge_io(&mut total, &m.stats());
        }
        total
    }

    fn reset_stats(&mut self) {
        self.access = StoreStats::default();
        for m in &mut self.members {
            m.reset_stats();
        }
    }

    fn shard_stats(&self) -> Vec<StoreStats> {
        self.members.iter().map(|m| m.stats()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::InMemoryStore;
    use crate::topology::CsrView;
    use smartsage_graph::generate::{generate_power_law, PowerLawConfig};

    fn graph(nodes: usize, seed: u64) -> CsrGraph {
        generate_power_law(&PowerLawConfig {
            nodes,
            avg_degree: 4.0,
            seed,
            ..PowerLawConfig::default()
        })
    }

    #[test]
    fn ranges_tile_exactly() {
        for (n, k) in [(10, 3), (7, 7), (3, 7), (0, 2), (1, 1), (100, 1)] {
            let ranges = shard_ranges(n, k);
            assert_eq!(ranges.len(), k);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges[k - 1].1, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous: {ranges:?}");
            }
            let lens: Vec<usize> = ranges.iter().map(|&(s, e)| e - s).collect();
            let (lo, hi) = (lens.iter().min(), lens.iter().max());
            assert!(hi.unwrap() - lo.unwrap() <= 1, "even split: {lens:?}");
        }
    }

    #[test]
    fn routing_picks_the_owning_shard() {
        let ranges = shard_ranges(10, 3); // (0,4)(4,7)(7,10)
        for idx in 0..10 {
            let s = shard_of(&ranges, idx);
            assert!(ranges[s].0 <= idx && idx < ranges[s].1);
        }
        // Empty tail shards are skipped over, never routed to.
        let ranges = shard_ranges(2, 5);
        assert_eq!(shard_of(&ranges, 0), 0);
        assert_eq!(shard_of(&ranges, 1), 1);
    }

    #[test]
    fn sharded_mem_store_matches_unsharded() {
        let table = FeatureTable::new(7, 4, 0x5A4D);
        let mut solo = InMemoryStore::new(FeatureTable::new(7, 4, 0x5A4D), 23);
        let mut sharded = ShardedFeatureStore::mem(table, 23, 4);
        let nodes: Vec<NodeId> = [22u32, 0, 7, 7, 13, 1, 19].map(NodeId::new).to_vec();
        let a = solo.gather(&nodes).unwrap();
        let b = sharded.gather(&nodes).unwrap();
        assert_eq!(a, b);
        for node in (0..23u32).map(NodeId::new) {
            assert_eq!(solo.label(node), sharded.label(node));
        }
        // Access counters identical to the unsharded store; per-shard
        // nodes sum to the total.
        let (s, t) = (sharded.stats(), solo.stats());
        assert_eq!(s, t);
        let per: u64 = sharded.shard_stats().iter().map(|p| p.nodes_gathered).sum();
        assert_eq!(per, s.nodes_gathered);
    }

    #[test]
    fn sharded_mem_topology_matches_unsharded() {
        let g = Arc::new(graph(31, 0x70B0));
        let mut solo = CsrView::new(&g);
        let mut sharded = ShardedTopology::mem(Arc::clone(&g), 3);
        assert_eq!(sharded.num_nodes(), 31);
        assert_eq!(sharded.num_edges(), g.num_edges());
        let nodes: Vec<NodeId> = (0..31u32).rev().map(NodeId::new).collect();
        let mut want = vec![0u64; nodes.len()];
        let mut got = vec![0u64; nodes.len()];
        solo.degrees_into(&nodes, &mut want).unwrap();
        sharded.degrees_into(&nodes, &mut got).unwrap();
        assert_eq!(want, got);
        let picks: Vec<(NodeId, u64)> = nodes
            .iter()
            .zip(&want)
            .filter(|(_, &d)| d > 0)
            .map(|(&n, &d)| (n, d - 1))
            .collect();
        let mut want_n = vec![NodeId::default(); picks.len()];
        let mut got_n = vec![NodeId::default(); picks.len()];
        solo.pick_neighbors_into(&picks, &mut want_n).unwrap();
        sharded.pick_neighbors_into(&picks, &mut got_n).unwrap();
        assert_eq!(want_n, got_n);
        assert_eq!(sharded.stats(), solo.stats());
    }

    #[test]
    fn out_of_range_requests_fail_before_any_member_counts() {
        let mut store = ShardedFeatureStore::mem(FeatureTable::new(3, 2, 1), 10, 3);
        let err = store.gather(&[NodeId::new(10)]).unwrap_err();
        assert!(matches!(err, StoreError::NodeOutOfRange { .. }), "{err}");
        assert_eq!(store.stats(), StoreStats::default());
        let mut topo = ShardedTopology::mem(Arc::new(graph(10, 1)), 2);
        let mut out = [0u64];
        let err = topo.degrees_into(&[NodeId::new(10)], &mut out).unwrap_err();
        assert!(matches!(err, StoreError::NodeOutOfRange { .. }), "{err}");
        assert_eq!(topo.stats(), StoreStats::default());
    }

    #[test]
    fn manifest_layout_errors_name_file_and_shard() {
        let entry = |p: &str, start, end| ShardEntry {
            path: PathBuf::from(p),
            start,
            end,
        };
        let gap = ShardManifest {
            num_nodes: 10,
            shards: vec![entry("a", 0, 4), entry("b", 5, 10)],
        };
        let err = gap.validate().unwrap_err();
        assert!(
            matches!(err, StoreError::ShardLayout { shard: 1, .. }),
            "{err}"
        );
        assert!(err.to_string().contains('b'), "{err}");
        assert!(err.to_string().contains("gap"), "{err}");
        let overlap = ShardManifest {
            num_nodes: 10,
            shards: vec![entry("a", 0, 6), entry("b", 5, 10)],
        };
        let err = overlap.validate().unwrap_err();
        assert!(err.to_string().contains("overlap"), "{err}");
        let short = ShardManifest {
            num_nodes: 10,
            shards: vec![entry("a", 0, 9)],
        };
        assert!(short.validate().is_err());
        let empty = ShardManifest {
            num_nodes: 0,
            shards: vec![],
        };
        assert!(empty.validate().is_err());
        let ok = ShardManifest::for_paths(10, vec!["a".into(), "b".into(), "c".into()]);
        ok.validate().unwrap();
        assert_eq!(ok.ranges(), shard_ranges(10, 3));
    }
}
