//! Scratch-file support: unique temp paths removed on drop.
//!
//! Shared by the store's own tests, the workspace's integration suites,
//! and any tool that needs a throwaway feature file — one definition,
//! so naming and cleanup behavior cannot drift between copies.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique path in the OS temp directory, deleted on drop (including
/// drops during a panicking test).
#[derive(Debug)]
pub struct ScratchFile(PathBuf);

impl ScratchFile {
    /// Creates a fresh path tagged `tag`; the file itself is not
    /// created until something writes it.
    pub fn new(tag: &str) -> ScratchFile {
        // ssl::allow(SSL004): scratch-name sequence number — names
        // throwaway files, never read as a statistic.
        static SEQ: AtomicU64 = AtomicU64::new(0);
        ScratchFile(std::env::temp_dir().join(format!(
            "smartsage-scratch-{}-{}-{tag}.fbin",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        )))
    }

    /// The path.
    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_are_unique_and_cleaned_up() {
        let a = ScratchFile::new("x");
        let b = ScratchFile::new("x");
        assert_ne!(a.path(), b.path());
        std::fs::write(a.path(), b"data").unwrap();
        let kept = a.path().to_path_buf();
        drop(a);
        assert!(!kept.exists(), "drop must remove the file");
    }
}
