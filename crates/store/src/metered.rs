//! A metering wrapper: exact access counters around any store.

use crate::error::StoreError;
use crate::{FeatureStore, StoreStats};
use smartsage_graph::NodeId;

/// Wraps any [`FeatureStore`] and keeps its own exact access counters
/// (gathers, node rows, payload bytes), merged over the inner store's
/// I/O counters in [`MeteredStore::stats`].
///
/// The wrapper counts at the call boundary, so reports can compare
/// "what training asked for" (wrapper) against "what the disk did"
/// (inner). Only *successful* gathers advance the counters — a failed
/// gather delivers nothing and counts nothing, keeping the wrapper
/// consistent with the inner store's accounting.
///
/// # Example
///
/// ```
/// use smartsage_graph::{FeatureTable, NodeId};
/// use smartsage_store::{FeatureStore, InMemoryStore, MeteredStore};
/// let inner = InMemoryStore::new(FeatureTable::new(4, 2, 0), 10);
/// let mut store = MeteredStore::new(inner);
/// store.gather(&[NodeId::new(1), NodeId::new(2)]).unwrap();
/// let s = store.stats();
/// assert_eq!((s.gathers, s.nodes_gathered, s.feature_bytes), (1, 2, 32));
/// ```
#[derive(Debug)]
pub struct MeteredStore<S> {
    inner: S,
    gathers: u64,
    nodes_gathered: u64,
    feature_bytes: u64,
}

impl<S: FeatureStore> MeteredStore<S> {
    /// Wraps `inner` with zeroed counters.
    pub fn new(inner: S) -> MeteredStore<S> {
        MeteredStore {
            inner,
            gathers: 0,
            nodes_gathered: 0,
            feature_bytes: 0,
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the inner store.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: FeatureStore> FeatureStore for MeteredStore<S> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn num_classes(&self) -> usize {
        self.inner.num_classes()
    }

    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn label(&self, node: NodeId) -> usize {
        self.inner.label(node)
    }

    fn gather_into(&mut self, nodes: &[NodeId], out: &mut [f32]) -> Result<(), StoreError> {
        self.inner.gather_into(nodes, out)?;
        self.gathers += 1;
        self.nodes_gathered += nodes.len() as u64;
        self.feature_bytes += nodes.len() as u64 * self.inner.dim() as u64 * 4;
        Ok(())
    }

    /// Wrapper access counters over the inner store's I/O counters.
    fn stats(&self) -> StoreStats {
        let inner = self.inner.stats();
        StoreStats {
            gathers: self.gathers,
            nodes_gathered: self.nodes_gathered,
            feature_bytes: self.feature_bytes,
            ..inner
        }
    }

    fn reset_stats(&mut self) {
        self.gathers = 0;
        self.nodes_gathered = 0;
        self.feature_bytes = 0;
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InMemoryStore;
    use smartsage_graph::FeatureTable;

    fn store() -> MeteredStore<InMemoryStore> {
        MeteredStore::new(InMemoryStore::new(FeatureTable::new(8, 4, 1), 100))
    }

    #[test]
    fn counters_are_exact() {
        let mut s = store();
        s.gather(&[NodeId::new(0)]).unwrap();
        s.gather(&(0..7u32).map(NodeId::new).collect::<Vec<_>>())
            .unwrap();
        s.gather(&[]).unwrap();
        let stats = s.stats();
        assert_eq!(stats.gathers, 3);
        assert_eq!(stats.nodes_gathered, 8);
        assert_eq!(stats.feature_bytes, 8 * 8 * 4);
        // Wrapper counters agree with the inner store's own accounting.
        let inner = s.inner().stats();
        assert_eq!(stats.gathers, inner.gathers);
        assert_eq!(stats.nodes_gathered, inner.nodes_gathered);
        assert_eq!(stats.feature_bytes, inner.feature_bytes);
    }

    #[test]
    fn failed_gathers_do_not_count() {
        let mut s = store();
        assert!(s.gather(&[NodeId::new(100)]).is_err());
        assert_eq!(s.stats().gathers, 0);
        assert_eq!(s.stats().nodes_gathered, 0);
    }

    #[test]
    fn values_pass_through_unchanged() {
        let table = FeatureTable::new(8, 4, 1);
        let mut s = store();
        let nodes = [NodeId::new(3), NodeId::new(9)];
        assert_eq!(s.gather(&nodes).unwrap(), table.gather(&nodes));
        assert_eq!(s.label(NodeId::new(9)), table.label(NodeId::new(9)));
        assert_eq!(s.dim(), 8);
        assert_eq!(s.num_classes(), 4);
        assert_eq!(s.num_nodes(), 100);
    }

    #[test]
    fn reset_clears_wrapper_and_inner() {
        let mut s = store();
        s.gather(&[NodeId::new(1)]).unwrap();
        s.reset_stats();
        assert_eq!(s.stats(), StoreStats::default());
        assert_eq!(s.inner().stats(), StoreStats::default());
    }
}
