//! The store registry: each content-keyed feature file is opened once
//! per registry and shared by every caller.
//!
//! Feature bytes are a pure function of `(dim, num_classes, seed,
//! num_nodes)`, so the registry names files by that **content key** in
//! the OS temp directory and deduplicates opens: the first caller
//! publishes (write to a private temp name, then an atomic rename) and
//! opens; everyone else gets an `Arc` clone of the same
//! [`SharedFileStore`] — one file descriptor, one sharded page cache.
//!
//! There are two kinds of registry:
//!
//! * [`StoreRegistry::global`] — the process-wide instance used by
//!   ad-hoc pipeline runs; its caches persist for the process lifetime.
//! * Private instances (`StoreRegistry::new`) — a
//!   [`Runner`](../../smartsage_core/runner/index.html) sweep creates
//!   its own, so each sweep starts cold, concurrent sweeps cannot
//!   perturb each other's hit rates, and a second sweep in the same
//!   process reports exactly what its solo run would.
//!
//! # Feature-file lifecycle
//!
//! Published files (`smartsage-feat-*.fbin`) are content-keyed and
//! immutable: they are *meant* to outlive the process so later runs
//! skip re-serialization. They are reclaimed by
//! [`remove_cached_feature_files`] (exposed as `reproduce
//! --clean-store`). Orphaned publish temporaries
//! (`smartsage-feat-*.tmp-<pid>-<seq>`, left by a crash between write
//! and rename) are swept automatically on every publish and by the same
//! cleanup call; a temporary is stale when its embedded pid is no
//! longer alive (falling back to a 24-hour age cutoff where liveness
//! cannot be checked).

use crate::error::StoreError;
use crate::file::{write_feature_file, write_feature_shard, FileStoreOptions};
use crate::graph_file::{write_graph_file, write_graph_shard, SharedCsrFile};
use crate::sharded::shard_ranges;
use crate::shared::{SharedFileStore, DEFAULT_CACHE_SHARDS};
use smartsage_graph::{CsrGraph, FeatureTable};
use smartsage_hostio::LockExt;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Prefix of every feature file the registry manages in the temp
/// directory.
const FILE_PREFIX: &str = "smartsage-feat-";

/// Prefix of every graph topology file the registry manages.
const GRAPH_PREFIX: &str = "smartsage-graph-";

/// Marker separating a publish temporary's name from its `<pid>-<seq>`
/// suffix.
const TMP_MARKER: &str = ".tmp-";

/// Occupancy snapshot of one registered store, for reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreOccupancy {
    /// The backing feature file.
    pub path: PathBuf,
    /// Resident pages per cache shard, in shard order.
    pub shard_pages: Vec<usize>,
    /// Total page capacity of the cache.
    pub capacity_pages: usize,
    /// Pages loaded by background read-ahead (demand I/O lives in the
    /// handles' scoped stats, prefetch I/O here).
    pub prefetch_pages: u64,
    /// Bytes loaded by background read-ahead.
    pub prefetch_bytes: u64,
}

impl StoreOccupancy {
    /// Total resident pages across shards.
    pub fn resident_pages(&self) -> usize {
        self.shard_pages.iter().sum()
    }
}

/// One content key's slot: the per-key lock serializes publication of
/// *this* file only, so a multi-MB serialize of one key never blocks
/// opens of already-published keys on other sweep threads.
type Slot = Arc<Mutex<Option<Arc<SharedFileStore>>>>;

/// One graph content key's slot (same per-key discipline).
type GraphSlot = Arc<Mutex<Option<Arc<SharedCsrFile>>>>;

/// Deduplicates [`SharedFileStore`] and [`SharedCsrFile`] opens by
/// content-keyed path — one registry serves both halves of the
/// dataset (features and topology), so a sweep's jobs share one open
/// file and one page cache per key on each axis.
#[derive(Debug, Default)]
pub struct StoreRegistry {
    // BTreeMap, not HashMap: occupancy() and close_all() iterate these
    // maps, and registry output feeds reports — iteration order must
    // be a function of the keys alone (SSL002).
    entries: Mutex<BTreeMap<PathBuf, Slot>>,
    graph_entries: Mutex<BTreeMap<PathBuf, GraphSlot>>,
}

impl StoreRegistry {
    /// An empty registry with no open stores.
    pub fn new() -> StoreRegistry {
        StoreRegistry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static StoreRegistry {
        // ssl::allow(SSL004): the global registry is the sanctioned
        // process-wide instance (module docs); sweeps that need
        // isolation construct private registries instead.
        static GLOBAL: OnceLock<StoreRegistry> = OnceLock::new();
        GLOBAL.get_or_init(StoreRegistry::new)
    }

    /// The content-keyed path for `table`'s first `num_nodes` rows.
    pub fn content_key_path(table: &FeatureTable, num_nodes: usize) -> PathBuf {
        std::env::temp_dir().join(format!(
            "{FILE_PREFIX}n{num_nodes}-d{}-c{}-s{:x}.fbin",
            table.dim(),
            table.num_classes(),
            table.seed(),
        ))
    }

    /// Opens (publishing first if needed) the shared store for
    /// `table`'s first `num_nodes` rows. The first call for a content
    /// key does the work; every later call returns the same `Arc`.
    ///
    /// An existing on-disk file is revalidated through the usual
    /// magic/header/length checks; anything stale or foreign is
    /// replaced via write-to-temporary + atomic rename (sweeping any
    /// orphaned temporaries it finds next to it). Requesting a key
    /// that is already open with *different* options fails with
    /// [`StoreError::OptionsConflict`] rather than silently serving
    /// someone else's geometry.
    pub fn open_feature_table(
        &self,
        table: &FeatureTable,
        num_nodes: usize,
        opts: FileStoreOptions,
    ) -> Result<Arc<SharedFileStore>, StoreError> {
        let path = StoreRegistry::content_key_path(table, num_nodes);
        // Two-level locking: the map lock is held only long enough to
        // fetch/create this key's slot; serialization (a multi-MB
        // write) happens under the per-key slot lock, so opens of
        // other keys proceed concurrently.
        let slot: Slot = {
            let mut entries = self.entries.safe_lock();
            Arc::clone(entries.entry(path.clone()).or_default())
        };
        let mut guard = slot.safe_lock();
        if let Some(existing) = guard.as_ref() {
            // Never hand a caller a store with a different geometry
            // than it asked for — its I/O accounting would silently be
            // computed against someone else's page size and capacity.
            if existing.options() != opts {
                return Err(StoreError::OptionsConflict {
                    path,
                    requested: opts,
                    open: existing.options(),
                });
            }
            return Ok(Arc::clone(existing));
        }
        // First open of this key in this registry. The slot lock
        // serializes publication, so concurrent sweep threads wanting
        // the same table cannot both serialize it.
        let matches = |s: &SharedFileStore| {
            s.dim() == table.dim()
                && s.num_nodes() == num_nodes
                && s.num_classes() == table.num_classes()
        };
        let store = match SharedFileStore::open_with(&path, opts, DEFAULT_CACHE_SHARDS) {
            Ok(store) if matches(&store) => store,
            _ => {
                // ssl::allow(SSL004): publish-temporary sequence
                // number — names files, never read as a statistic.
                static SEQ: AtomicU64 = AtomicU64::new(0);
                if let Some(dir) = path.parent() {
                    sweep_stale_tmp_files(dir);
                }
                let tmp = path.with_extension(format!(
                    "tmp-{}-{}",
                    std::process::id(),
                    SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                write_feature_file(&tmp, table, num_nodes)?;
                std::fs::rename(&tmp, &path).map_err(|source| StoreError::Io {
                    path: path.clone(),
                    action: "publish",
                    source,
                })?;
                SharedFileStore::open_with(&path, opts, DEFAULT_CACHE_SHARDS)?
            }
        };
        let store = Arc::new(store);
        *guard = Some(Arc::clone(&store));
        Ok(store)
    }

    /// The content-keyed path for `graph`'s topology file: node/edge
    /// counts plus an FNV-1a fingerprint of the full CSR content, so
    /// distinct graphs can never collide on a key. The fingerprint is
    /// one O(edges) pass per call — the same order of work as the
    /// materialization that produced the graph, paid once per
    /// `open_graph_csr` (a per-run cost, like materialization itself).
    pub fn graph_content_key_path(graph: &CsrGraph) -> PathBuf {
        std::env::temp_dir().join(format!(
            "{GRAPH_PREFIX}n{}-e{}-h{:016x}.gbin",
            graph.num_nodes(),
            graph.num_edges(),
            graph_fingerprint(graph),
        ))
    }

    /// The content-keyed path for shard `shard` of a `shards`-way
    /// feature partition of `table`'s first `num_nodes` rows. The key
    /// extends [`StoreRegistry::content_key_path`] with a `-p{i}of{k}`
    /// suffix, so every partition width publishes its own immutable
    /// file set and shard files never collide with the unsharded file.
    pub fn feature_shard_key_path(
        table: &FeatureTable,
        num_nodes: usize,
        shard: usize,
        shards: usize,
    ) -> PathBuf {
        std::env::temp_dir().join(format!(
            "{FILE_PREFIX}n{num_nodes}-d{}-c{}-s{:x}-p{shard}of{shards}.fbin",
            table.dim(),
            table.num_classes(),
            table.seed(),
        ))
    }

    /// The content-keyed path for shard `shard` of a `shards`-way
    /// topology partition of `graph` — the graph analogue of
    /// [`StoreRegistry::feature_shard_key_path`].
    pub fn graph_shard_key_path(graph: &CsrGraph, shard: usize, shards: usize) -> PathBuf {
        std::env::temp_dir().join(format!(
            "{GRAPH_PREFIX}n{}-e{}-h{:016x}-p{shard}of{shards}.gbin",
            graph.num_nodes(),
            graph.num_edges(),
            graph_fingerprint(graph),
        ))
    }

    /// Opens (publishing first if needed) the `shards`-way feature
    /// partition of `table`'s first `num_nodes` rows: one shard file
    /// per contiguous [`shard_ranges`] range, each holding its range's
    /// rows at local indices, each deduplicated under the same per-key
    /// slot discipline as [`StoreRegistry::open_feature_table`]. The
    /// returned stores are in shard order.
    pub fn open_feature_shards(
        &self,
        table: &FeatureTable,
        num_nodes: usize,
        shards: usize,
        opts: FileStoreOptions,
    ) -> Result<Vec<Arc<SharedFileStore>>, StoreError> {
        let ranges = shard_ranges(num_nodes, shards);
        let mut out = Vec::with_capacity(shards);
        for (i, &(start, end)) in ranges.iter().enumerate() {
            let path = StoreRegistry::feature_shard_key_path(table, num_nodes, i, shards);
            let slot: Slot = {
                let mut entries = self.entries.safe_lock();
                Arc::clone(entries.entry(path.clone()).or_default())
            };
            let mut guard = slot.safe_lock();
            if let Some(existing) = guard.as_ref() {
                if existing.options() != opts {
                    return Err(StoreError::OptionsConflict {
                        path,
                        requested: opts,
                        open: existing.options(),
                    });
                }
                out.push(Arc::clone(existing));
                continue;
            }
            let rows = end - start;
            let matches = |s: &SharedFileStore| {
                s.dim() == table.dim()
                    && s.num_nodes() == rows
                    && s.num_classes() == table.num_classes()
            };
            let store = match SharedFileStore::open_with(&path, opts, DEFAULT_CACHE_SHARDS) {
                Ok(store) if matches(&store) => store,
                _ => {
                    if let Some(dir) = path.parent() {
                        sweep_stale_tmp_files(dir);
                    }
                    let tmp = path.with_extension(format!(
                        "tmp-{}-{}",
                        std::process::id(),
                        publish_seq()
                    ));
                    write_feature_shard(&tmp, table, start, end)?;
                    std::fs::rename(&tmp, &path).map_err(|source| StoreError::Io {
                        path: path.clone(),
                        action: "publish",
                        source,
                    })?;
                    SharedFileStore::open_with(&path, opts, DEFAULT_CACHE_SHARDS)?
                }
            };
            let store = Arc::new(store);
            *guard = Some(Arc::clone(&store));
            out.push(store);
        }
        Ok(out)
    }

    /// Opens (publishing first if needed) the `shards`-way topology
    /// partition of `graph`: one shard file per contiguous
    /// [`shard_ranges`] range, each an `SSGRPH01` file carrying the
    /// global node count and its own range's edges (see
    /// [`write_graph_shard`]), deduplicated under the same per-key
    /// slot discipline as [`StoreRegistry::open_graph_csr`]. The
    /// returned files are in shard order.
    pub fn open_graph_shards(
        &self,
        graph: &CsrGraph,
        shards: usize,
        opts: FileStoreOptions,
    ) -> Result<Vec<Arc<SharedCsrFile>>, StoreError> {
        let n = graph.num_nodes();
        let ranges = shard_ranges(n, shards);
        let offset = |i: usize| -> u64 {
            if i == n {
                graph.num_edges()
            } else {
                graph.edge_list_start(smartsage_graph::NodeId::new(i as u32))
            }
        };
        let mut out = Vec::with_capacity(shards);
        for (i, &(start, end)) in ranges.iter().enumerate() {
            let path = StoreRegistry::graph_shard_key_path(graph, i, shards);
            let slot: GraphSlot = {
                let mut entries = self.graph_entries.safe_lock();
                Arc::clone(entries.entry(path.clone()).or_default())
            };
            let mut guard = slot.safe_lock();
            if let Some(existing) = guard.as_ref() {
                if existing.options() != opts {
                    return Err(StoreError::OptionsConflict {
                        path,
                        requested: opts,
                        open: existing.options(),
                    });
                }
                out.push(Arc::clone(existing));
                continue;
            }
            let shard_edges = offset(end) - offset(start);
            let matches = |s: &SharedCsrFile| s.num_nodes() == n && s.num_edges() == shard_edges;
            let store = match SharedCsrFile::open_with(&path, opts, DEFAULT_CACHE_SHARDS) {
                Ok(store) if matches(&store) => store,
                _ => {
                    if let Some(dir) = path.parent() {
                        sweep_stale_tmp_files(dir);
                    }
                    let tmp = path.with_extension(format!(
                        "tmp-{}-{}",
                        std::process::id(),
                        publish_seq()
                    ));
                    write_graph_shard(&tmp, graph, start, end)?;
                    std::fs::rename(&tmp, &path).map_err(|source| StoreError::Io {
                        path: path.clone(),
                        action: "publish",
                        source,
                    })?;
                    SharedCsrFile::open_with(&path, opts, DEFAULT_CACHE_SHARDS)?
                }
            };
            let store = Arc::new(store);
            *guard = Some(Arc::clone(&store));
            out.push(store);
        }
        Ok(out)
    }

    /// Opens (publishing first if needed) the shared topology file for
    /// `graph` — the graph analogue of
    /// [`StoreRegistry::open_feature_table`]: the first call for a
    /// content key serializes and opens; every later call returns the
    /// same `Arc` (one file descriptor, one sharded page cache per
    /// sweep). An existing on-disk file is revalidated through the
    /// usual magic/header/length checks; anything stale or foreign is
    /// replaced via write-to-temporary + atomic rename. Requesting a
    /// key that is already open with *different* options fails with
    /// [`StoreError::OptionsConflict`].
    pub fn open_graph_csr(
        &self,
        graph: &CsrGraph,
        opts: FileStoreOptions,
    ) -> Result<Arc<SharedCsrFile>, StoreError> {
        let path = StoreRegistry::graph_content_key_path(graph);
        let slot: GraphSlot = {
            let mut entries = self.graph_entries.safe_lock();
            Arc::clone(entries.entry(path.clone()).or_default())
        };
        let mut guard = slot.safe_lock();
        if let Some(existing) = guard.as_ref() {
            if existing.options() != opts {
                return Err(StoreError::OptionsConflict {
                    path,
                    requested: opts,
                    open: existing.options(),
                });
            }
            return Ok(Arc::clone(existing));
        }
        let matches = |s: &SharedCsrFile| {
            s.num_nodes() == graph.num_nodes() && s.num_edges() == graph.num_edges()
        };
        let store = match SharedCsrFile::open_with(&path, opts, DEFAULT_CACHE_SHARDS) {
            Ok(store) if matches(&store) => store,
            _ => {
                // ssl::allow(SSL004): publish-temporary sequence
                // number — names files, never read as a statistic.
                static SEQ: AtomicU64 = AtomicU64::new(0);
                if let Some(dir) = path.parent() {
                    sweep_stale_tmp_files(dir);
                }
                let tmp = path.with_extension(format!(
                    "tmp-{}-{}",
                    std::process::id(),
                    SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                write_graph_file(&tmp, graph)?;
                std::fs::rename(&tmp, &path).map_err(|source| StoreError::Io {
                    path: path.clone(),
                    action: "publish",
                    source,
                })?;
                SharedCsrFile::open_with(&path, opts, DEFAULT_CACHE_SHARDS)?
            }
        };
        let store = Arc::new(store);
        *guard = Some(Arc::clone(&store));
        Ok(store)
    }

    /// Every graph file currently open in this registry.
    fn open_graphs(&self) -> Vec<Arc<SharedCsrFile>> {
        let slots: Vec<GraphSlot> = {
            let entries = self.graph_entries.safe_lock();
            entries.values().cloned().collect()
        };
        slots
            .iter()
            .filter_map(|slot| slot.safe_lock().clone())
            .collect()
    }

    /// Every store currently open in this registry (empty slots from
    /// failed opens are skipped).
    fn open_stores(&self) -> Vec<Arc<SharedFileStore>> {
        let slots: Vec<Slot> = {
            let entries = self.entries.safe_lock();
            entries.values().cloned().collect()
        };
        slots
            .iter()
            .filter_map(|slot| slot.safe_lock().clone())
            .collect()
    }

    /// Number of distinct stores (feature + graph) this registry has
    /// open.
    pub fn len(&self) -> usize {
        self.open_stores().len() + self.open_graphs().len()
    }

    /// `true` when no store is open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-store cache occupancy — feature stores and graph topology
    /// files alike — sorted by path for stable output.
    pub fn occupancy(&self) -> Vec<StoreOccupancy> {
        let mut out: Vec<StoreOccupancy> = self
            .open_stores()
            .iter()
            .map(|s| {
                let prefetch = s.prefetch_stats();
                StoreOccupancy {
                    path: s.path().to_path_buf(),
                    shard_pages: s.cache_occupancy(),
                    capacity_pages: s.cache_capacity(),
                    prefetch_pages: prefetch.pages_read,
                    prefetch_bytes: prefetch.bytes_read,
                }
            })
            .collect();
        out.extend(self.open_graphs().iter().map(|g| StoreOccupancy {
            path: g.path().to_path_buf(),
            shard_pages: g.cache_occupancy(),
            capacity_pages: g.cache_capacity(),
            prefetch_pages: 0,
            prefetch_bytes: 0,
        }));
        out.sort_by(|a, b| a.path.cmp(&b.path));
        out
    }

    /// Drops every cached page of every open store (the files stay
    /// open and published). A sweep calls this on its own registry —
    /// a no-op there, but it is also how tests cold-start the global
    /// one.
    pub fn clear_caches(&self) {
        for store in self.open_stores() {
            store.clear_cache();
        }
        for graph in self.open_graphs() {
            graph.clear_cache();
        }
    }

    /// Closes every open store. Outstanding handles keep their `Arc`s
    /// alive; the registry just forgets them, so the next open is
    /// fresh.
    pub fn close_all(&self) {
        self.entries.safe_lock().clear();
        self.graph_entries.safe_lock().clear();
    }
}

/// FNV-1a fingerprint of a graph's full CSR content (node/edge counts,
/// offsets, neighbor ids), so distinct graphs can never collide on a
/// content key. One O(edges) pass per call — the same order of work as
/// the materialization that produced the graph.
fn graph_fingerprint(graph: &CsrGraph) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    mix(graph.num_nodes() as u64);
    mix(graph.num_edges());
    for node in graph.node_ids() {
        mix(graph.edge_list_start(node));
        for &t in graph.neighbors(node) {
            mix(t.raw() as u64);
        }
    }
    h
}

/// Next publish-temporary sequence number — names temporary files,
/// never read as a statistic.
fn publish_seq() -> u64 {
    // ssl::allow(SSL004): publish-temporary sequence number — names
    // files, never read as a statistic.
    static SEQ: AtomicU64 = AtomicU64::new(0);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Parses the pid out of a publish-temporary file name
/// (`...fbin` replaced by `tmp-<pid>-<seq>`).
fn tmp_file_pid(name: &str) -> Option<u32> {
    let rest = &name[name.find(TMP_MARKER)? + TMP_MARKER.len()..];
    rest.split('-').next()?.parse().ok()
}

/// Whether the process that created a temporary is still alive (when
/// that can be determined on this platform).
fn pid_alive(pid: u32) -> Option<bool> {
    if cfg!(target_os = "linux") {
        Some(Path::new(&format!("/proc/{pid}")).exists())
    } else {
        None
    }
}

fn is_stale_tmp(path: &Path) -> bool {
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return false;
    };
    if (!name.starts_with(FILE_PREFIX) && !name.starts_with(GRAPH_PREFIX))
        || !name.contains(TMP_MARKER)
    {
        return false;
    }
    let Some(pid) = tmp_file_pid(name) else {
        return false;
    };
    if pid == std::process::id() {
        // Possibly mid-publish in this very process; never touch it.
        return false;
    }
    match pid_alive(pid) {
        Some(alive) => !alive,
        None => {
            // Liveness unknown: only reclaim clearly abandoned files.
            let day = std::time::Duration::from_secs(24 * 60 * 60);
            std::fs::metadata(path)
                .and_then(|m| m.modified())
                .ok()
                .and_then(|t| t.elapsed().ok())
                .is_some_and(|age| age > day)
        }
    }
}

/// Removes orphaned publish temporaries from `dir` (see the module docs
/// for what counts as stale); returns how many were removed. Called
/// automatically before every publish; safe to call any time.
pub fn sweep_stale_tmp_files(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.flatten() {
        let path = entry.path();
        if is_stale_tmp(&path) && std::fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// Removes every published feature file (`smartsage-feat-*.fbin`),
/// every published graph topology file (`smartsage-graph-*.gbin`), and
/// every stale publish temporary from the OS temp directory; returns
/// how many files were removed. The global registry's entries are
/// closed first so no deleted file is still being served — later opens
/// simply re-publish. This is the cleanup path behind `reproduce
/// --clean-store`.
pub fn remove_cached_feature_files() -> usize {
    StoreRegistry::global().close_all();
    let dir = std::env::temp_dir();
    let mut removed = sweep_stale_tmp_files(&dir);
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return removed;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let is_published = path.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
            (n.starts_with(FILE_PREFIX) && n.ends_with(".fbin"))
                || (n.starts_with(GRAPH_PREFIX) && n.ends_with(".gbin"))
        });
        if is_published && std::fs::remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FeatureStore;
    use crate::StoreHandle;
    use smartsage_graph::NodeId;

    fn table(seed: u64) -> FeatureTable {
        FeatureTable::new(5, 3, seed)
    }

    #[test]
    fn same_key_is_opened_exactly_once() {
        let reg = StoreRegistry::new();
        let opts = FileStoreOptions::default();
        let a = reg.open_feature_table(&table(0xA11CE), 30, opts).unwrap();
        let b = reg.open_feature_table(&table(0xA11CE), 30, opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "one registry entry per content key");
        assert_eq!(reg.len(), 1);
        let c = reg.open_feature_table(&table(0xA11CE), 31, opts).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "node count is part of the key");
        assert_eq!(reg.len(), 2);
        let _ = std::fs::remove_file(a.path());
        let _ = std::fs::remove_file(c.path());
    }

    #[test]
    fn concurrent_opens_dedup_per_key_without_cross_key_blocking() {
        let reg = StoreRegistry::new();
        let opts = FileStoreOptions::default();
        // 3 distinct keys × several threads racing on each: every
        // thread of a key must get the same Arc (one open per key),
        // and all keys publish concurrently under per-key locks.
        let stores: Vec<Vec<Arc<SharedFileStore>>> = std::thread::scope(|s| {
            let reg = &reg;
            (0..3u64)
                .map(|k| {
                    let handles: Vec<_> = (0..4)
                        .map(move |_| {
                            s.spawn(move || {
                                reg.open_feature_table(&table(0xCC00 + k), 25 + k as usize, opts)
                                    .unwrap()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
                .collect()
        });
        assert_eq!(reg.len(), 3);
        for per_key in &stores {
            for other in &per_key[1..] {
                assert!(Arc::ptr_eq(&per_key[0], other), "same key, same store");
            }
        }
        assert!(!Arc::ptr_eq(&stores[0][0], &stores[1][0]));
        for per_key in &stores {
            let _ = std::fs::remove_file(per_key[0].path());
        }
    }

    #[test]
    fn occupancy_order_is_a_function_of_keys_not_insertion_order() {
        // Adversarial insertion orders: two registries open the same
        // key set forwards and backwards. Occupancy feeds reports, so
        // the listings must be byte-identical — this is the regression
        // test behind the BTreeMap choice (SSL002).
        let opts = FileStoreOptions::default();
        let seeds = [0xD0_01u64, 0xD0_02, 0xD0_03, 0xD0_04, 0xD0_05];
        let forward = StoreRegistry::new();
        for (i, &seed) in seeds.iter().enumerate() {
            forward
                .open_feature_table(&table(seed), 20 + i, opts)
                .unwrap();
        }
        let backward = StoreRegistry::new();
        for (i, &seed) in seeds.iter().enumerate().rev() {
            backward
                .open_feature_table(&table(seed), 20 + i, opts)
                .unwrap();
        }
        let render = |reg: &StoreRegistry| {
            reg.occupancy()
                .iter()
                .map(|o| format!("{}:{}\n", o.path.display(), o.capacity_pages))
                .collect::<String>()
        };
        assert_eq!(render(&forward), render(&backward));
        for o in forward.occupancy() {
            let _ = std::fs::remove_file(&o.path);
        }
    }

    #[test]
    fn conflicting_options_for_an_open_key_are_rejected() {
        let reg = StoreRegistry::new();
        let t = table(0xBADA);
        let opts = FileStoreOptions::default();
        let store = reg.open_feature_table(&t, 12, opts).unwrap();
        let err = reg
            .open_feature_table(
                &t,
                12,
                FileStoreOptions {
                    page_bytes: 512,
                    ..opts
                },
            )
            .unwrap_err();
        assert!(
            matches!(err, crate::StoreError::OptionsConflict { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("already open"), "{err}");
        // Same options still dedup to the same Arc.
        let again = reg.open_feature_table(&t, 12, opts).unwrap();
        assert!(Arc::ptr_eq(&store, &again));
        let _ = std::fs::remove_file(store.path());
    }

    #[test]
    fn registries_share_files_but_not_caches() {
        let t = table(0xB0B);
        let opts = FileStoreOptions::default();
        let reg1 = StoreRegistry::new();
        let reg2 = StoreRegistry::new();
        let a = reg1.open_feature_table(&t, 20, opts).unwrap();
        let b = reg2.open_feature_table(&t, 20, opts).unwrap();
        assert_eq!(a.path(), b.path(), "same content key, same file");
        let nodes: Vec<NodeId> = (0..20u32).map(NodeId::new).collect();
        let mut h = StoreHandle::new(Arc::clone(&a));
        h.gather(&nodes).unwrap();
        assert!(a.cache_occupancy().iter().sum::<usize>() > 0);
        assert_eq!(
            b.cache_occupancy().iter().sum::<usize>(),
            0,
            "a sweep-private registry starts cold"
        );
        let _ = std::fs::remove_file(a.path());
    }

    #[test]
    fn occupancy_and_clear_caches() {
        let reg = StoreRegistry::new();
        let t = table(0xCAFE);
        let store = reg
            .open_feature_table(&t, 40, FileStoreOptions::default())
            .unwrap();
        let mut h = StoreHandle::new(Arc::clone(&store));
        h.gather(&(0..40u32).map(NodeId::new).collect::<Vec<_>>())
            .unwrap();
        let occ = reg.occupancy();
        assert_eq!(occ.len(), 1);
        assert!(occ[0].resident_pages() > 0);
        assert_eq!(occ[0].capacity_pages, store.cache_capacity());
        assert_eq!(occ[0].path, store.path());
        reg.clear_caches();
        assert_eq!(reg.occupancy()[0].resident_pages(), 0);
        reg.close_all();
        assert!(reg.is_empty());
        // Outstanding Arcs still work after close_all.
        h.gather(&[NodeId::new(1)]).unwrap();
        let _ = std::fs::remove_file(store.path());
    }

    #[test]
    fn graph_keys_dedup_share_and_conflict_like_feature_keys() {
        use smartsage_graph::generate::{generate_power_law, PowerLawConfig};
        let gen = |seed| {
            generate_power_law(&PowerLawConfig {
                nodes: 40,
                avg_degree: 4.0,
                seed,
                ..PowerLawConfig::default()
            })
        };
        let g = gen(0x6AF);
        let reg = StoreRegistry::new();
        let opts = FileStoreOptions::default();
        let a = reg.open_graph_csr(&g, opts).unwrap();
        let b = reg.open_graph_csr(&g, opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "one registry entry per graph key");
        assert_eq!(reg.len(), 1);
        let c = reg.open_graph_csr(&gen(0x6B0), opts).unwrap();
        assert_ne!(a.path(), c.path(), "content hash is part of the key");
        assert_eq!(reg.len(), 2);
        let err = reg
            .open_graph_csr(
                &g,
                FileStoreOptions {
                    page_bytes: 512,
                    ..opts
                },
            )
            .unwrap_err();
        assert!(matches!(err, crate::StoreError::OptionsConflict { .. }));
        // Occupancy covers graph stores once they are warm.
        let nodes: Vec<NodeId> = (0..40u32).map(NodeId::new).collect();
        a.offset_pairs(&nodes).unwrap();
        let occ = reg.occupancy();
        assert_eq!(occ.len(), 2);
        assert!(occ
            .iter()
            .any(|o| o.path == a.path() && o.resident_pages() > 0));
        reg.clear_caches();
        assert!(reg.occupancy().iter().all(|o| o.resident_pages() == 0));
        reg.close_all();
        assert!(reg.is_empty());
        for p in [a.path(), c.path()] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn stale_foreign_graph_file_is_republished() {
        use smartsage_graph::generate::{generate_power_law, PowerLawConfig};
        let g = generate_power_law(&PowerLawConfig {
            nodes: 12,
            avg_degree: 3.0,
            seed: 0x6B1,
            ..PowerLawConfig::default()
        });
        let reg = StoreRegistry::new();
        let path = StoreRegistry::graph_content_key_path(&g);
        std::fs::write(&path, b"not a graph file").unwrap();
        let store = reg.open_graph_csr(&g, FileStoreOptions::default()).unwrap();
        assert_eq!(store.num_nodes(), 12);
        assert_eq!(store.num_edges(), g.num_edges());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_foreign_file_is_republished() {
        let reg = StoreRegistry::new();
        let t = table(0xD00D);
        let path = StoreRegistry::content_key_path(&t, 10);
        std::fs::write(&path, b"not a feature file").unwrap();
        let store = reg
            .open_feature_table(&t, 10, FileStoreOptions::default())
            .unwrap();
        assert_eq!(store.num_nodes(), 10);
        let mut h = StoreHandle::new(Arc::clone(&store));
        h.gather(&[NodeId::new(0)]).unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_tmp_files_are_swept_and_live_ones_kept() {
        let dir =
            std::env::temp_dir().join(format!("smartsage-tmp-sweep-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // A dead pid (u32::MAX is never a live pid) → stale.
        let dead = dir.join(format!("{FILE_PREFIX}n1-d1-c1-s0.tmp-{}-0", u32::MAX));
        // Our own pid → possibly mid-publish, must be kept.
        let ours = dir.join(format!(
            "{FILE_PREFIX}n1-d1-c1-s0.tmp-{}-0",
            std::process::id()
        ));
        // Unrelated files are never touched.
        let other = dir.join("some-other-file.tmp-1-0");
        for f in [&dead, &ours, &other] {
            std::fs::write(f, b"x").unwrap();
        }
        let removed = sweep_stale_tmp_files(&dir);
        assert_eq!(removed, 1, "exactly the dead-pid temporary goes");
        assert!(!dead.exists());
        assert!(ours.exists());
        assert!(other.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tmp_pid_parsing() {
        assert_eq!(
            tmp_file_pid("smartsage-feat-n1-d1-c1-s0.tmp-123-4"),
            Some(123)
        );
        assert_eq!(tmp_file_pid("smartsage-feat-n1.tmp-abc-4"), None);
        assert_eq!(tmp_file_pid("smartsage-feat-n1.fbin"), None);
    }
}
