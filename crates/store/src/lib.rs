//! Feature stores: where node feature vectors are read from during
//! training.
//!
//! SmartSAGE's premise (§III–IV) is that GNN training becomes
//! storage-bound once the dataset spills out of DRAM. The simulator
//! models that for the *edge-list* array; this crate makes it real for
//! the *feature table*: training can gather features through actual
//! page-aligned storage I/O instead of an in-memory table.
//!
//! Implementations of the [`FeatureStore`] trait:
//!
//! * [`InMemoryStore`] — wraps the synthetic
//!   [`FeatureTable`](smartsage_graph::FeatureTable); features are
//!   produced straight into the caller's buffer with no I/O.
//! * [`FileStore`] — a single-owner on-disk feature file ([`mod@file`]
//!   documents the layout) read with page-aligned I/O, an exact-LRU
//!   page cache ([`smartsage_hostio::LruSet`] ordering), and batch
//!   gathers whose page reads are coalesced into contiguous runs
//!   ([`smartsage_hostio::merge_page_runs`]).
//! * [`SharedFileStore`] + [`StoreHandle`] — the concurrent store
//!   layer: one open file and one lock-striped
//!   [`ShardedPageCache`](smartsage_hostio::ShardedPageCache) shared by
//!   every thread, with exact per-call I/O deltas accumulated in
//!   per-handle *scoped* counters. A [`StoreRegistry`] deduplicates
//!   opens by content key, so a whole sweep of parallel jobs shares one
//!   store.
//! * [`IspGatherStore`] — the in-storage-processing tier: the same
//!   on-disk file, but batch gathers resolve *device-side* against an
//!   [`smartsage_storage::Ssd`] timing model (FTL lookups, flash
//!   channel parallelism at a bounded queue depth, page-buffer hits)
//!   and only the packed feature rows cross the modeled PCIe link —
//!   the paper's Fig 10(b) transfer-reduction mechanism on the real
//!   feature path.
//! * [`MeteredStore`] — wraps any store and keeps exact access counters
//!   (gathers, nodes, payload bytes) on top of the inner store's I/O
//!   stats, for reports.
//!
//! # The topology half
//!
//! The feature table is only half the on-SSD dataset; the other half
//! is the **neighbor edge-list array** the sampler walks. The
//! [`TopologyStore`] trait ([`mod@topology`]) mirrors the feature-store
//! architecture for it:
//!
//! * [`InMemoryTopology`] / [`CsrView`] — wrap a
//!   [`CsrGraph`](smartsage_graph::CsrGraph); no I/O.
//! * [`FileTopology`] — a scoped handle onto a registry-shared
//!   [`SharedCsrFile`] (`SSGRPH01` on-disk CSR, [`mod@graph_file`]):
//!   coalesced page-aligned offset/edge reads through the same sharded
//!   page cache discipline.
//! * [`IspSampleTopology`] — in-storage sampling: hop expansion
//!   resolves device-side against the SSD timing model and only the
//!   sampled neighbor ids cross the modeled link.
//!
//! # The determinism contract
//!
//! Feature gathering follows the same plan/resolve discipline as
//! neighbor sampling (`smartsage_gnn::sampler`): a gather is *planned*
//! as a pure function of the node list (which rows, which pages, in
//! which order) and then *resolved* against the backing bytes. Every
//! store resolves the same plan to **byte-identical** results — the
//! storage medium may change latency and I/O counts, never values. The
//! conformance suites (`tests/feature_store_conformance.rs`,
//! `tests/topology_store_conformance.rs`) assert this across random
//! graphs, batch orders, and page sizes, and the training equivalence
//! tests assert that a full `Trainer` run through [`FileStore`] (and
//! sampling through [`FileTopology`]) produces a bit-identical loss
//! trajectory to the in-memory tiers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod file;
pub mod graph_file;
pub mod handle;
pub mod isp;
pub mod isp_topology;
pub mod mem;
pub mod metered;
pub mod registry;
pub mod scratch;
pub mod sharded;
pub mod shared;
pub mod stats;
pub mod topology;
pub mod trace;

pub use error::StoreError;
pub use file::{write_feature_file, write_feature_shard, FileStore, FileStoreOptions};
pub use graph_file::{check_same_population, write_graph_file, write_graph_shard, SharedCsrFile};
pub use handle::StoreHandle;
pub use isp::{IspGatherOptions, IspGatherStore};
pub use isp_topology::IspSampleTopology;
pub use mem::InMemoryStore;
pub use metered::MeteredStore;
pub use registry::{
    remove_cached_feature_files, sweep_stale_tmp_files, StoreOccupancy, StoreRegistry,
};
pub use scratch::ScratchFile;
pub use sharded::{
    check_sharded_population, shard_ranges, ShardEntry, ShardManifest, ShardedFeatureStore,
    ShardedTopology,
};
pub use shared::SharedFileStore;
pub use stats::AtomicStoreStats;
pub use topology::{
    share_topology, CsrView, FileTopology, InMemoryTopology, SharedTopology, TopologyKind,
    TopologyStore,
};
pub use trace::{SampleTrace, TraceAccess, TraceHop, TracingTopology};

use smartsage_graph::NodeId;
use std::sync::{Arc, Mutex};

/// A dynamically typed feature store shared across threads.
///
/// This is the hand-off type between subsystems: the pipeline builds
/// one per run (an [`InMemoryStore`] or a scoped [`StoreHandle`] onto a
/// registry-shared [`SharedFileStore`]) and every producer worker —
/// and any concurrent trainer — gathers through it. The mutex guards
/// the *handle* (its scoped counters); file-backed I/O underneath is
/// already concurrent via the shared store's sharded cache.
pub type SharedDynStore = Arc<Mutex<Box<dyn FeatureStore + Send>>>;

/// Wraps a concrete store in the shared dynamic hand-off type.
pub fn share_store(store: impl FeatureStore + Send + 'static) -> SharedDynStore {
    Arc::new(Mutex::new(Box::new(store)))
}

/// Which feature-store implementation an experiment trains through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreKind {
    /// In-memory feature table (the historical default).
    Mem,
    /// File-backed store: page-aligned reads + LRU page cache. Every
    /// fetched page crosses the (modeled) host link whole, like the
    /// paper's Fig 10(a) baseline.
    File,
    /// In-storage-processing gather ([`IspGatherStore`]): page reads
    /// happen device-side against an SSD timing model and only the
    /// packed feature rows cross the host link (Fig 10(b)).
    Isp,
}

impl StoreKind {
    /// Parses a `--store` flag value.
    pub fn parse(s: &str) -> Option<StoreKind> {
        match s {
            "mem" => Some(StoreKind::Mem),
            "file" => Some(StoreKind::File),
            "isp" => Some(StoreKind::Isp),
            _ => None,
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            StoreKind::Mem => "mem",
            StoreKind::File => "file",
            StoreKind::Isp => "isp",
        }
    }
}

/// Exact access and I/O counters of a store.
///
/// Access-level counters (`gathers`, `nodes_gathered`, `feature_bytes`)
/// describe what callers asked for; I/O-level counters (`pages_read`,
/// `bytes_read`, `page_hits`, `page_misses`) describe what actually hit
/// the disk. For [`InMemoryStore`] the I/O counters stay zero.
///
/// The transfer-path counters split *where* bytes moved:
///
/// * `device_bytes_read` — bytes the storage device read from its
///   medium (page-aligned). For [`FileStore`] and [`SharedFileStore`]
///   this equals `bytes_read`.
/// * `host_bytes_transferred` — bytes that crossed the SSD→host link.
///   The host-path stores ship every fetched page whole (Fig 10(a)), so
///   this again equals `bytes_read`; the [`IspGatherStore`] gathers
///   device-side and ships only the packed feature rows (Fig 10(b)), so
///   it equals `feature_bytes` instead.
/// * `device_ns` — modeled device-side busy time in nanoseconds
///   (nonzero only for [`IspGatherStore`], whose gathers run against an
///   [`smartsage_storage::Ssd`] timing model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Number of `gather_into` calls.
    pub gathers: u64,
    /// Total node rows requested across gathers.
    pub nodes_gathered: u64,
    /// Useful payload bytes delivered (`nodes_gathered × dim × 4`).
    pub feature_bytes: u64,
    /// Pages fetched from the backing file.
    pub pages_read: u64,
    /// Bytes fetched from the backing file (page-aligned, so generally
    /// larger than the payload the pages were fetched for).
    pub bytes_read: u64,
    /// Distinct page lookups served by the page cache.
    pub page_hits: u64,
    /// Distinct page lookups that had to go to disk.
    pub page_misses: u64,
    /// Bytes the device read from its storage medium.
    pub device_bytes_read: u64,
    /// Bytes shipped over the SSD→host link.
    pub host_bytes_transferred: u64,
    /// Modeled device-side time in nanoseconds (ISP store only).
    pub device_ns: u64,
}

impl StoreStats {
    /// Page-cache hit rate over all page lookups (0.0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.page_hits + self.page_misses;
        if total == 0 {
            0.0
        } else {
            self.page_hits as f64 / total as f64
        }
    }

    /// Modeled SSD→host transfer reduction: device-side bytes read per
    /// byte actually shipped to the host. The host block path ships
    /// every page it reads, so it sits at `1.0` by construction; the
    /// ISP gather path rises above it whenever page-aligned device
    /// reads exceed the packed payload that crossed the link (the
    /// paper's Fig 10(b) claim). Both sides are floored at one byte so
    /// a no-I/O record (e.g. [`InMemoryStore`]) reports a neutral
    /// `1.0`, never NaN.
    pub fn transfer_reduction(&self) -> f64 {
        self.device_bytes_read.max(1) as f64 / self.host_bytes_transferred.max(1) as f64
    }

    /// Adds another stats record into this one.
    pub fn accumulate(&mut self, other: &StoreStats) {
        self.gathers += other.gathers;
        self.nodes_gathered += other.nodes_gathered;
        self.feature_bytes += other.feature_bytes;
        self.pages_read += other.pages_read;
        self.bytes_read += other.bytes_read;
        self.page_hits += other.page_hits;
        self.page_misses += other.page_misses;
        self.device_bytes_read += other.device_bytes_read;
        self.host_bytes_transferred += other.host_bytes_transferred;
        self.device_ns += other.device_ns;
    }
}

/// A source of node feature vectors (and labels) for training.
///
/// Implementations must be deterministic: the same node list must
/// always resolve to byte-identical feature rows, independent of cache
/// state, gather batching, or page size (see the crate docs for the
/// plan/resolve contract). `gather_into` takes `&mut self` because
/// storage-backed stores update cache state and counters; the *values*
/// returned are nevertheless pure functions of the node list.
pub trait FeatureStore: std::fmt::Debug {
    /// Feature dimensionality of every row.
    fn dim(&self) -> usize;

    /// Number of label classes.
    fn num_classes(&self) -> usize;

    /// Number of node rows the store holds.
    fn num_nodes(&self) -> usize;

    /// The label (class) of `node`.
    fn label(&self, node: NodeId) -> usize;

    /// Gathers the feature rows of `nodes` into `out` (row-major,
    /// `nodes.len() × dim`).
    fn gather_into(&mut self, nodes: &[NodeId], out: &mut [f32]) -> Result<(), StoreError>;

    /// Counters so far.
    fn stats(&self) -> StoreStats;

    /// Resets all counters (and nothing else — cache contents survive).
    fn reset_stats(&mut self);

    /// Per-shard counter breakdown. A single-device store is its own
    /// one-shard partition, so the default is one entry equal to
    /// [`FeatureStore::stats`]; a sharded store
    /// ([`ShardedFeatureStore`]) reports one entry per member device
    /// whose I/O fields sum exactly to the merged totals (see its docs
    /// for the summation contract).
    fn shard_stats(&self) -> Vec<StoreStats> {
        vec![self.stats()]
    }

    /// Gathers the feature rows of `nodes` as a fresh matrix.
    fn gather(&mut self, nodes: &[NodeId]) -> Result<Vec<f32>, StoreError> {
        let mut out = vec![0.0; nodes.len() * self.dim()];
        self.gather_into(nodes, &mut out)?;
        Ok(out)
    }

    /// One node's feature vector as a fresh allocation.
    fn features(&mut self, node: NodeId) -> Result<Vec<f32>, StoreError> {
        self.gather(&[node])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_kind_parses() {
        assert_eq!(StoreKind::parse("mem"), Some(StoreKind::Mem));
        assert_eq!(StoreKind::parse("file"), Some(StoreKind::File));
        assert_eq!(StoreKind::parse("isp"), Some(StoreKind::Isp));
        assert_eq!(StoreKind::parse("disk"), None);
        assert_eq!(StoreKind::File.label(), "file");
        assert_eq!(StoreKind::Isp.label(), "isp");
    }

    #[test]
    fn stats_hit_rate_and_accumulate() {
        let mut a = StoreStats {
            gathers: 1,
            nodes_gathered: 10,
            feature_bytes: 400,
            pages_read: 3,
            bytes_read: 3 * 4096,
            page_hits: 1,
            page_misses: 3,
            device_bytes_read: 3 * 4096,
            host_bytes_transferred: 400,
            device_ns: 1_000,
        };
        assert!((a.hit_rate() - 0.25).abs() < 1e-12);
        assert_eq!(StoreStats::default().hit_rate(), 0.0);
        let b = a;
        a.accumulate(&b);
        assert_eq!(a.gathers, 2);
        assert_eq!(a.page_hits, 2);
        assert_eq!(a.bytes_read, 6 * 4096);
        assert_eq!(a.device_bytes_read, 6 * 4096);
        assert_eq!(a.host_bytes_transferred, 800);
        assert_eq!(a.device_ns, 2_000);
    }

    #[test]
    fn transfer_reduction_is_finite_and_directional() {
        assert_eq!(StoreStats::default().transfer_reduction(), 1.0);
        let host_path = StoreStats {
            device_bytes_read: 8192,
            host_bytes_transferred: 8192,
            ..StoreStats::default()
        };
        assert_eq!(host_path.transfer_reduction(), 1.0);
        let isp = StoreStats {
            device_bytes_read: 8192,
            host_bytes_transferred: 512,
            ..StoreStats::default()
        };
        assert_eq!(isp.transfer_reduction(), 16.0);
    }
}
