//! Thread-safe stats accumulation.
//!
//! Per-handle counters are plain [`StoreStats`] (a handle belongs to
//! one run on one thread); anything shared — the sweep accumulator a
//! `Runner` owns, the prefetch counters of a
//! [`SharedFileStore`](crate::SharedFileStore) — accumulates into an
//! [`AtomicStoreStats`] instead, so concurrent recorders never lose an
//! increment and a snapshot is always a sum of exact per-handle deltas.

use crate::StoreStats;
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`StoreStats`] record held in monotonic atomics.
///
/// # Example
///
/// ```
/// use smartsage_store::{AtomicStoreStats, StoreStats};
/// let acc = AtomicStoreStats::default();
/// acc.add(&StoreStats { gathers: 2, bytes_read: 4096, ..StoreStats::default() });
/// acc.add(&StoreStats { gathers: 1, ..StoreStats::default() });
/// let s = acc.snapshot();
/// assert_eq!((s.gathers, s.bytes_read), (3, 4096));
/// ```
#[derive(Debug, Default)]
pub struct AtomicStoreStats {
    gathers: AtomicU64,
    nodes_gathered: AtomicU64,
    feature_bytes: AtomicU64,
    pages_read: AtomicU64,
    bytes_read: AtomicU64,
    page_hits: AtomicU64,
    page_misses: AtomicU64,
    device_bytes_read: AtomicU64,
    host_bytes_transferred: AtomicU64,
    device_ns: AtomicU64,
}

impl AtomicStoreStats {
    /// Adds one exact stats record to the accumulator.
    pub fn add(&self, stats: &StoreStats) {
        self.gathers.fetch_add(stats.gathers, Ordering::Relaxed);
        self.nodes_gathered
            .fetch_add(stats.nodes_gathered, Ordering::Relaxed);
        self.feature_bytes
            .fetch_add(stats.feature_bytes, Ordering::Relaxed);
        self.pages_read
            .fetch_add(stats.pages_read, Ordering::Relaxed);
        self.bytes_read
            .fetch_add(stats.bytes_read, Ordering::Relaxed);
        self.page_hits.fetch_add(stats.page_hits, Ordering::Relaxed);
        self.page_misses
            .fetch_add(stats.page_misses, Ordering::Relaxed);
        self.device_bytes_read
            .fetch_add(stats.device_bytes_read, Ordering::Relaxed);
        self.host_bytes_transferred
            .fetch_add(stats.host_bytes_transferred, Ordering::Relaxed);
        self.device_ns.fetch_add(stats.device_ns, Ordering::Relaxed);
    }

    /// The accumulated totals.
    pub fn snapshot(&self) -> StoreStats {
        StoreStats {
            gathers: self.gathers.load(Ordering::Relaxed),
            nodes_gathered: self.nodes_gathered.load(Ordering::Relaxed),
            feature_bytes: self.feature_bytes.load(Ordering::Relaxed),
            pages_read: self.pages_read.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            page_hits: self.page_hits.load(Ordering::Relaxed),
            page_misses: self.page_misses.load(Ordering::Relaxed),
            device_bytes_read: self.device_bytes_read.load(Ordering::Relaxed),
            host_bytes_transferred: self.host_bytes_transferred.load(Ordering::Relaxed),
            device_ns: self.device_ns.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        for c in [
            &self.gathers,
            &self.nodes_gathered,
            &self.feature_bytes,
            &self.pages_read,
            &self.bytes_read,
            &self.page_hits,
            &self.page_misses,
            &self.device_bytes_read,
            &self.host_bytes_transferred,
            &self.device_ns,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_adds_are_lossless() {
        let acc = std::sync::Arc::new(AtomicStoreStats::default());
        let one = StoreStats {
            gathers: 1,
            nodes_gathered: 2,
            feature_bytes: 3,
            pages_read: 4,
            bytes_read: 5,
            page_hits: 6,
            page_misses: 7,
            device_bytes_read: 8,
            host_bytes_transferred: 9,
            device_ns: 10,
        };
        std::thread::scope(|s| {
            for _ in 0..8 {
                let acc = std::sync::Arc::clone(&acc);
                s.spawn(move || {
                    for _ in 0..100 {
                        acc.add(&one);
                    }
                });
            }
        });
        let got = acc.snapshot();
        assert_eq!(got.gathers, 800);
        assert_eq!(got.page_misses, 5600);
        acc.reset();
        assert_eq!(acc.snapshot(), StoreStats::default());
    }
}
