//! Topology stores: where neighbor sampling reads the graph from.
//!
//! SmartSAGE's dataset has two halves on the SSD (paper Fig 10): the
//! feature table — served by [`FeatureStore`](crate::FeatureStore)
//! implementations — and the neighbor edge-list array. This module is
//! the edge-list half: a [`TopologyStore`] answers the two batched
//! questions hop expansion asks (*what are these nodes' degrees?* and
//! *which neighbor sits at position `k` of this node's list?*), so
//! sampling can run against storage instead of an in-memory
//! [`CsrGraph`].
//!
//! Implementations:
//!
//! * [`InMemoryTopology`] / [`CsrView`] — wrap a [`CsrGraph`] (owned /
//!   borrowed); answers come straight from host memory with no I/O.
//!   `CsrView` is how the historical `plan_sample`/`resolve` functions
//!   are implemented, so every tier shares one code path by
//!   construction.
//! * [`FileTopology`] — a scoped handle onto a registry-shared
//!   [`SharedCsrFile`]: offset and edge slices
//!   are read page-aligned through the lock-striped
//!   [`ShardedPageCache`](smartsage_hostio::ShardedPageCache), one
//!   coalesced batch per hop, every fetched page crossing the host
//!   link whole (Fig 10(a)).
//! * [`IspSampleTopology`](crate::IspSampleTopology) — hop expansion
//!   resolves device-side against an [`smartsage_storage::Ssd`] timing
//!   model and only the sampled neighbor ids cross the modeled link
//!   (Fig 10(b), the paper's in-storage sampling).
//!
//! # The determinism contract
//!
//! Like feature gathers, topology reads are pure functions of the
//! request: the same node list resolves to the same degrees and the
//! same `(node, position)` picks resolve to the same neighbor ids on
//! every tier — the storage medium may change latency and I/O counts,
//! never values. `tests/topology_store_conformance.rs` asserts
//! bit-identical [`SampledBatch`](../../smartsage_gnn/sampler/struct.SampledBatch.html)es
//! across tiers for random Kronecker graphs, page sizes, and cache
//! sizes.

use crate::error::StoreError;
use crate::graph_file::{SharedCsrFile, GRAPH_ENTRY_BYTES};
use crate::StoreStats;
use smartsage_graph::{CsrGraph, NodeId};
use std::sync::{Arc, Mutex};

/// Which topology-store implementation an experiment samples through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// In-memory CSR (the historical default).
    Mem,
    /// File-backed topology: page-aligned offset/edge reads + shared
    /// LRU page cache; every fetched page crosses the (modeled) host
    /// link whole, like the paper's Fig 10(a) baseline.
    File,
    /// In-storage sampling ([`IspSampleTopology`](crate::IspSampleTopology)):
    /// hop expansion resolves device-side against an SSD timing model
    /// and only the sampled neighbor ids cross the host link
    /// (Fig 10(b)).
    Isp,
}

impl TopologyKind {
    /// Parses a `--graph` flag value.
    pub fn parse(s: &str) -> Option<TopologyKind> {
        match s {
            "mem" => Some(TopologyKind::Mem),
            "file" => Some(TopologyKind::File),
            "isp" => Some(TopologyKind::Isp),
            _ => None,
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            TopologyKind::Mem => "mem",
            TopologyKind::File => "file",
            TopologyKind::Isp => "isp",
        }
    }
}

/// A source of graph topology (degrees and neighbor picks) for
/// sampling.
///
/// Implementations must be deterministic: the same request resolves to
/// the same values on every tier, independent of cache state or
/// batching (see the module docs). Methods take `&mut self` because
/// storage-backed stores update cache state and counters; the *values*
/// returned are nevertheless pure functions of the request.
pub trait TopologyStore: std::fmt::Debug {
    /// Number of nodes the graph holds.
    fn num_nodes(&self) -> usize;

    /// Number of directed edges the graph holds.
    fn num_edges(&self) -> u64;

    /// Writes the out-degree of every node in `nodes` into `out`
    /// (`out.len() == nodes.len()`).
    fn degrees_into(&mut self, nodes: &[NodeId], out: &mut [u64]) -> Result<(), StoreError>;

    /// Resolves each `(node, position)` pick to the neighbor id at that
    /// position of the node's neighbor list
    /// (`out.len() == picks.len()`). Positions must be in range for
    /// their node's degree.
    fn pick_neighbors_into(
        &mut self,
        picks: &[(NodeId, u64)],
        out: &mut [NodeId],
    ) -> Result<(), StoreError>;

    /// Counters so far (same record type as the feature stores;
    /// `feature_bytes` counts delivered topology payload bytes).
    fn stats(&self) -> StoreStats;

    /// Resets all counters (and nothing else — cache contents survive).
    fn reset_stats(&mut self);

    /// Per-shard counter breakdown. A single-device topology is its own
    /// one-shard partition, so the default is one entry equal to
    /// [`TopologyStore::stats`]; a sharded topology
    /// ([`ShardedTopology`](crate::ShardedTopology)) reports one entry
    /// per member device whose I/O fields sum exactly to the merged
    /// totals.
    fn shard_stats(&self) -> Vec<StoreStats> {
        vec![self.stats()]
    }

    /// The out-degree of one node.
    fn degree(&mut self, node: NodeId) -> Result<u64, StoreError> {
        let mut out = [0u64];
        self.degrees_into(&[node], &mut out)?;
        Ok(out[0])
    }

    /// The `k`-th neighbor of one node.
    fn neighbor(&mut self, node: NodeId, k: u64) -> Result<NodeId, StoreError> {
        let mut out = [NodeId::default()];
        self.pick_neighbors_into(&[(node, k)], &mut out)?;
        Ok(out[0])
    }
}

/// A dynamically typed topology store shared across threads — the
/// hand-off type between the pipeline and its samplers, mirroring
/// [`SharedDynStore`](crate::SharedDynStore).
pub type SharedTopology = Arc<Mutex<Box<dyn TopologyStore + Send>>>;

/// Wraps a concrete topology store in the shared dynamic hand-off type.
pub fn share_topology(topo: impl TopologyStore + Send + 'static) -> SharedTopology {
    Arc::new(Mutex::new(Box::new(topo)))
}

pub(crate) fn check_out_len<T>(expected: usize, out: &[T]) -> Result<(), StoreError> {
    if out.len() != expected {
        return Err(StoreError::BadBuffer {
            expected,
            actual: out.len(),
        });
    }
    Ok(())
}

/// Shared CSR answer path of the two in-memory wrappers.
fn csr_degrees_into(graph: &CsrGraph, nodes: &[NodeId], out: &mut [u64]) -> Result<(), StoreError> {
    check_out_len(nodes.len(), out)?;
    for (slot, &node) in out.iter_mut().zip(nodes) {
        if node.index() >= graph.num_nodes() {
            return Err(StoreError::NodeOutOfRange {
                node,
                num_nodes: graph.num_nodes(),
            });
        }
        *slot = graph.degree(node);
    }
    Ok(())
}

fn csr_picks_into(
    graph: &CsrGraph,
    picks: &[(NodeId, u64)],
    out: &mut [NodeId],
) -> Result<(), StoreError> {
    check_out_len(picks.len(), out)?;
    for (slot, &(node, k)) in out.iter_mut().zip(picks) {
        if node.index() >= graph.num_nodes() {
            return Err(StoreError::NodeOutOfRange {
                node,
                num_nodes: graph.num_nodes(),
            });
        }
        // The same pick validation the file tiers apply: an
        // out-of-range position is a typed error on every tier, never
        // a silently wrong neighbor.
        let degree = graph.degree(node);
        if k >= degree {
            return Err(StoreError::PickOutOfRange {
                node,
                position: k,
                degree,
            });
        }
        *slot = graph.neighbor(node, k);
    }
    Ok(())
}

/// Uniform access-counter convention for one logical topology read of
/// `answers` 8-byte results (degrees or neighbor ids), identical on
/// every tier so exact cross-tier counter equality holds: `gathers`
/// counts batched operations, `nodes_gathered` counts answers,
/// `feature_bytes` counts delivered payload.
pub(crate) fn count_answers(stats: &mut StoreStats, answers: u64) {
    stats.gathers += 1;
    stats.nodes_gathered += answers;
    stats.feature_bytes += answers * GRAPH_ENTRY_BYTES;
}

/// A [`TopologyStore`] over an owned in-memory [`CsrGraph`]; answers
/// come straight from host memory, so the I/O counters stay zero.
#[derive(Debug, Clone)]
pub struct InMemoryTopology {
    graph: Arc<CsrGraph>,
    stats: StoreStats,
}

impl InMemoryTopology {
    /// Wraps `graph`.
    pub fn new(graph: CsrGraph) -> InMemoryTopology {
        InMemoryTopology::from_arc(Arc::new(graph))
    }

    /// Wraps an already-shared graph without copying it.
    pub fn from_arc(graph: Arc<CsrGraph>) -> InMemoryTopology {
        InMemoryTopology {
            graph,
            stats: StoreStats::default(),
        }
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }
}

impl TopologyStore for InMemoryTopology {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn num_edges(&self) -> u64 {
        self.graph.num_edges()
    }

    fn degrees_into(&mut self, nodes: &[NodeId], out: &mut [u64]) -> Result<(), StoreError> {
        csr_degrees_into(&self.graph, nodes, out)?;
        count_answers(&mut self.stats, nodes.len() as u64);
        Ok(())
    }

    fn pick_neighbors_into(
        &mut self,
        picks: &[(NodeId, u64)],
        out: &mut [NodeId],
    ) -> Result<(), StoreError> {
        csr_picks_into(&self.graph, picks, out)?;
        count_answers(&mut self.stats, picks.len() as u64);
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
    }
}

/// A zero-copy [`TopologyStore`] view over a borrowed [`CsrGraph`].
///
/// This is how the historical in-memory sampling entry points
/// (`plan_sample`, `SamplePlan::resolve`) run: they wrap the graph in
/// a `CsrView` and call the storage-generic path, so the in-memory and
/// storage tiers cannot drift apart.
#[derive(Debug)]
pub struct CsrView<'a> {
    graph: &'a CsrGraph,
    stats: StoreStats,
}

impl<'a> CsrView<'a> {
    /// Wraps a borrowed graph.
    pub fn new(graph: &'a CsrGraph) -> CsrView<'a> {
        CsrView {
            graph,
            stats: StoreStats::default(),
        }
    }
}

impl TopologyStore for CsrView<'_> {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn num_edges(&self) -> u64 {
        self.graph.num_edges()
    }

    fn degrees_into(&mut self, nodes: &[NodeId], out: &mut [u64]) -> Result<(), StoreError> {
        csr_degrees_into(self.graph, nodes, out)?;
        count_answers(&mut self.stats, nodes.len() as u64);
        Ok(())
    }

    fn pick_neighbors_into(
        &mut self,
        picks: &[(NodeId, u64)],
        out: &mut [NodeId],
    ) -> Result<(), StoreError> {
        csr_picks_into(self.graph, picks, out)?;
        count_answers(&mut self.stats, picks.len() as u64);
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
    }
}

/// A [`TopologyStore`] view of a [`SharedCsrFile`] with private, scoped
/// counters — the topology analogue of
/// [`StoreHandle`](crate::StoreHandle).
///
/// Cheap to create (an `Arc` clone plus zeroed counters): make one per
/// run, per worker, or per test. All handles of one file share its page
/// cache and file descriptor; each accumulates only its own exact
/// per-call deltas.
#[derive(Debug)]
pub struct FileTopology {
    shared: Arc<SharedCsrFile>,
    stats: StoreStats,
}

impl FileTopology {
    /// A fresh handle with zeroed counters.
    pub fn new(shared: Arc<SharedCsrFile>) -> FileTopology {
        FileTopology {
            shared,
            stats: StoreStats::default(),
        }
    }

    /// Opens `path` privately (its own shared file with default
    /// geometry) through the full validation path.
    pub fn open(path: &std::path::Path) -> Result<FileTopology, StoreError> {
        Ok(FileTopology::new(Arc::new(SharedCsrFile::open(path)?)))
    }

    /// The shared graph file behind this handle.
    pub fn shared(&self) -> &Arc<SharedCsrFile> {
        &self.shared
    }
}

impl TopologyStore for FileTopology {
    fn num_nodes(&self) -> usize {
        self.shared.num_nodes()
    }

    fn num_edges(&self) -> u64 {
        self.shared.num_edges()
    }

    fn degrees_into(&mut self, nodes: &[NodeId], out: &mut [u64]) -> Result<(), StoreError> {
        check_out_len(nodes.len(), out)?;
        let (pairs, io) = self.shared.offset_pairs(nodes)?;
        for (slot, (start, end)) in out.iter_mut().zip(pairs) {
            *slot = end - start;
        }
        self.stats.accumulate(&io);
        count_answers(&mut self.stats, nodes.len() as u64);
        Ok(())
    }

    fn pick_neighbors_into(
        &mut self,
        picks: &[(NodeId, u64)],
        out: &mut [NodeId],
    ) -> Result<(), StoreError> {
        check_out_len(picks.len(), out)?;
        // Two coalesced passes per batch (offset pairs, then edge
        // entries), shared with the ISP tier via
        // [`SharedCsrFile::resolve_picks`].
        let (targets, _, io) = self.shared.resolve_picks(picks)?;
        out.copy_from_slice(&targets);
        self.stats.accumulate(&io);
        count_answers(&mut self.stats, picks.len() as u64);
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_file::write_graph_file;
    use crate::ScratchFile;
    use smartsage_graph::generate::{generate_power_law, PowerLawConfig};

    fn graph(nodes: usize, seed: u64) -> CsrGraph {
        generate_power_law(&PowerLawConfig {
            nodes,
            avg_degree: 5.0,
            seed,
            ..PowerLawConfig::default()
        })
    }

    #[test]
    fn topology_kind_parses() {
        assert_eq!(TopologyKind::parse("mem"), Some(TopologyKind::Mem));
        assert_eq!(TopologyKind::parse("file"), Some(TopologyKind::File));
        assert_eq!(TopologyKind::parse("isp"), Some(TopologyKind::Isp));
        assert_eq!(TopologyKind::parse("csr"), None);
        assert_eq!(TopologyKind::File.label(), "file");
    }

    #[test]
    fn file_topology_matches_memory_and_counts_io() {
        let g = graph(90, 0x70);
        let file = ScratchFile::new("topo-equiv");
        write_graph_file(file.path(), &g).unwrap();
        let mut mem = InMemoryTopology::new(g.clone());
        let mut disk = FileTopology::open(file.path()).unwrap();
        assert_eq!(disk.num_nodes(), mem.num_nodes());
        assert_eq!(disk.num_edges(), mem.num_edges());
        let nodes: Vec<NodeId> = (0..90u32).map(NodeId::new).collect();
        let mut want = vec![0u64; 90];
        let mut got = vec![0u64; 90];
        mem.degrees_into(&nodes, &mut want).unwrap();
        disk.degrees_into(&nodes, &mut got).unwrap();
        assert_eq!(got, want);
        let picks: Vec<(NodeId, u64)> = nodes
            .iter()
            .zip(&want)
            .filter(|&(_, &d)| d > 0)
            .flat_map(|(&n, &d)| (0..d).map(move |k| (n, k)))
            .collect();
        let mut want_n = vec![NodeId::default(); picks.len()];
        let mut got_n = vec![NodeId::default(); picks.len()];
        mem.pick_neighbors_into(&picks, &mut want_n).unwrap();
        disk.pick_neighbors_into(&picks, &mut got_n).unwrap();
        assert_eq!(got_n, want_n, "picks resolve identically");
        assert!(disk.stats().bytes_read > 0);
        assert_eq!(mem.stats().bytes_read, 0, "memory does no I/O");
        // Access counters are uniform across tiers.
        assert_eq!(disk.stats().gathers, mem.stats().gathers);
        assert_eq!(disk.stats().nodes_gathered, mem.stats().nodes_gathered);
        assert_eq!(disk.stats().feature_bytes, mem.stats().feature_bytes);
        disk.reset_stats();
        assert_eq!(disk.stats(), StoreStats::default());
    }

    #[test]
    fn handles_share_the_cache_but_not_the_counters() {
        let g = graph(60, 0x71);
        let file = ScratchFile::new("topo-handles");
        write_graph_file(file.path(), &g).unwrap();
        let shared = Arc::new(SharedCsrFile::open(file.path()).unwrap());
        let mut a = FileTopology::new(Arc::clone(&shared));
        let mut b = FileTopology::new(Arc::clone(&shared));
        let nodes: Vec<NodeId> = (0..60u32).map(NodeId::new).collect();
        let mut out = vec![0u64; 60];
        a.degrees_into(&nodes, &mut out).unwrap();
        b.degrees_into(&nodes, &mut out).unwrap();
        assert!(a.stats().page_misses > 0);
        assert_eq!(b.stats().page_misses, 0, "B rides A's cached pages");
        assert!(b.stats().page_hits > 0);
        assert_eq!(a.stats().gathers, 1);
        assert_eq!(b.stats().gathers, 1);
    }

    #[test]
    fn out_of_range_and_bad_buffers_are_typed() {
        let g = graph(8, 0x72);
        let mut mem = InMemoryTopology::new(g);
        let mut out = vec![0u64; 1];
        assert!(matches!(
            mem.degrees_into(&[NodeId::new(8)], &mut out).unwrap_err(),
            StoreError::NodeOutOfRange { num_nodes: 8, .. }
        ));
        assert!(matches!(
            mem.degrees_into(&[NodeId::new(0), NodeId::new(1)], &mut out)
                .unwrap_err(),
            StoreError::BadBuffer {
                expected: 2,
                actual: 1
            }
        ));
        assert_eq!(mem.stats().gathers, 0, "failed reads count nothing");
    }

    #[test]
    fn shared_topology_hand_off_works() {
        let g = graph(16, 0x73);
        let topo = share_topology(InMemoryTopology::new(g));
        let mut guard = topo.lock().unwrap();
        guard.degree(NodeId::new(0)).unwrap();
        assert!(guard.stats().gathers > 0);
    }
}
