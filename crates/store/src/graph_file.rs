//! The on-disk CSR graph file: real page-aligned storage for the
//! neighbor edge-list array.
//!
//! # On-disk layout (`SSGRPH01`)
//!
//! A graph file is one page-aligned header, the offset array, and the
//! neighbor edge-list array — the paper's Fig 10 byte space made real
//! (the feature half lives in the sibling `SSFEAT01` format of
//! [`mod@crate::file`]):
//!
//! ```text
//! offset 0      magic  "SSGRPH01"             (8 bytes)
//! offset 8      num_nodes   u64 LE
//! offset 16     num_edges   u64 LE
//! offset 24     zero padding to 4096
//! offset 4096   offsets: (num_nodes + 1) × u64 LE
//!               zero padding to the next 4096 boundary
//! offset E      edge array: num_edges × u64 LE neighbor ids
//! ```
//!
//! Every neighbor entry is 8 bytes
//! ([`smartsage_graph::csr::NEIGHBOR_ENTRY_BYTES`], the paper's
//! "fine-grained 8 byte read transactions"), and the edge array starts
//! page-aligned, exactly like the simulated on-SSD layout of
//! [`smartsage_hostio::GraphFile`]. A file whose length disagrees with
//! its header fails to open with [`StoreError::Truncated`] naming the
//! file and the expected length; internally inconsistent CSR content —
//! offsets out of monotone order, an edge index past the end of the
//! edge array, a neighbor id past the node count — fails the read that
//! discovers it with [`StoreError::CorruptGraph`], never a panic.
//!
//! # Read path
//!
//! [`SharedCsrFile`] is the topology analogue of
//! [`SharedFileStore`](crate::SharedFileStore): the file is opened once
//! per registry and read with positioned reads through a lock-striped
//! [`ShardedPageCache`]; a batch of offset or edge entries is planned
//! (pure address arithmetic), its distinct pages merged into maximal
//! contiguous runs ([`merge_page_runs`]), and each maximal stretch of
//! missing pages costs one positioned read. Every operation takes
//! `&self` and returns its exact per-call I/O deltas, which the
//! caller's [`FileTopology`](crate::FileTopology) handle accumulates
//! into scoped counters.

use crate::error::StoreError;
use crate::file::FileStoreOptions;
use crate::stats::AtomicStoreStats;
use crate::StoreStats;
use smartsage_graph::{CsrGraph, NodeId};
use smartsage_hostio::{
    merge_page_runs, ByteRange, ReadEngine, ReadRequest, ReadSource, ShardedPageCache,
};
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes identifying a graph topology file (versioned).
pub const GRAPH_FILE_MAGIC: [u8; 8] = *b"SSGRPH01";

/// Bytes reserved for the header; the offset array starts here.
pub const GRAPH_HEADER_BYTES: u64 = 4096;

/// Bytes per offset / neighbor entry (u64 LE, matching the 8-byte
/// neighbor entries of the simulated on-SSD layout).
pub const GRAPH_ENTRY_BYTES: u64 = 8;

/// Byte offset where the edge array of an `n`-node graph begins: the
/// offset array padded out to the next page boundary.
pub fn edge_array_base(num_nodes: u64) -> u64 {
    (GRAPH_HEADER_BYTES + (num_nodes + 1) * GRAPH_ENTRY_BYTES).next_multiple_of(GRAPH_HEADER_BYTES)
}

/// Exact length of a graph file holding `num_nodes` nodes and
/// `num_edges` edges.
pub fn graph_file_len(num_nodes: u64, num_edges: u64) -> u64 {
    edge_array_base(num_nodes) + num_edges * GRAPH_ENTRY_BYTES
}

/// Serializes `graph` to `path` in the layout above. Overwrites any
/// existing file.
pub fn write_graph_file(path: &Path, graph: &CsrGraph) -> Result<(), StoreError> {
    let io_err = |action: &'static str| {
        move |source: std::io::Error| StoreError::Io {
            path: path.to_path_buf(),
            action,
            source,
        }
    };
    let file = File::create(path).map_err(io_err("create"))?;
    let mut w = BufWriter::new(file);
    let n = graph.num_nodes() as u64;
    let mut header = [0u8; GRAPH_HEADER_BYTES as usize];
    header[0..8].copy_from_slice(&GRAPH_FILE_MAGIC);
    header[8..16].copy_from_slice(&n.to_le_bytes());
    header[16..24].copy_from_slice(&graph.num_edges().to_le_bytes());
    w.write_all(&header).map_err(io_err("write header"))?;
    for node in graph.node_ids() {
        w.write_all(&graph.edge_list_start(node).to_le_bytes())
            .map_err(io_err("write offsets"))?;
    }
    w.write_all(&graph.num_edges().to_le_bytes())
        .map_err(io_err("write offsets"))?;
    let pad = edge_array_base(n) - (GRAPH_HEADER_BYTES + (n + 1) * GRAPH_ENTRY_BYTES);
    w.write_all(&vec![0u8; pad as usize])
        .map_err(io_err("write padding"))?;
    for node in graph.node_ids() {
        for &t in graph.neighbors(node) {
            w.write_all(&(t.raw() as u64).to_le_bytes())
                .map_err(io_err("write edges"))?;
        }
    }
    w.flush().map_err(io_err("flush"))?;
    Ok(())
}

/// Serializes the edge lists of the global node range `start..end` of
/// `graph` to `path` as a standalone graph-shard file.
///
/// A graph shard is a perfectly ordinary `SSGRPH01` file that keeps the
/// **global** node count in its header (so neighbor ids — which remain
/// global — still validate against it) and a full-length offset array
/// that is flat outside the shard's range: offsets below `start` are
/// `0`, offsets inside `start..=end` are rebased by the shard's first
/// global edge offset, and offsets above `end` equal the shard's edge
/// count. The endpoint invariants every open path checks (first offset
/// `0`, last offset == header edge count) therefore hold by
/// construction, out-of-shard nodes read as degree `0`, and in-shard
/// nodes resolve to exactly their global edge lists — no id
/// translation anywhere on the topology axis. An empty range writes a
/// valid zero-edge shard. Overwrites any existing file.
pub fn write_graph_shard(
    path: &Path,
    graph: &CsrGraph,
    start: usize,
    end: usize,
) -> Result<(), StoreError> {
    let n = graph.num_nodes();
    assert!(start <= end && end <= n, "bad shard range {start}..{end}");
    let io_err = |action: &'static str| {
        move |source: std::io::Error| StoreError::Io {
            path: path.to_path_buf(),
            action,
            source,
        }
    };
    let off_global = |i: usize| -> u64 {
        if i == n {
            graph.num_edges()
        } else {
            graph.edge_list_start(NodeId::new(i as u32))
        }
    };
    let base = off_global(start);
    let top = off_global(end);
    let shard_edges = top - base;
    let file = File::create(path).map_err(io_err("create"))?;
    let mut w = BufWriter::new(file);
    let mut header = [0u8; GRAPH_HEADER_BYTES as usize];
    header[0..8].copy_from_slice(&GRAPH_FILE_MAGIC);
    header[8..16].copy_from_slice(&(n as u64).to_le_bytes());
    header[16..24].copy_from_slice(&shard_edges.to_le_bytes());
    w.write_all(&header).map_err(io_err("write header"))?;
    for i in 0..=n {
        let off = off_global(i).clamp(base, top) - base;
        w.write_all(&off.to_le_bytes())
            .map_err(io_err("write offsets"))?;
    }
    let n64 = n as u64;
    let pad = edge_array_base(n64) - (GRAPH_HEADER_BYTES + (n64 + 1) * GRAPH_ENTRY_BYTES);
    w.write_all(&vec![0u8; pad as usize])
        .map_err(io_err("write padding"))?;
    for i in start..end {
        for &t in graph.neighbors(NodeId::new(i as u32)) {
            w.write_all(&(t.raw() as u64).to_le_bytes())
                .map_err(io_err("write edges"))?;
        }
    }
    w.flush().map_err(io_err("flush"))?;
    Ok(())
}

/// An opened, validated graph file: the raw handle plus header fields.
#[derive(Debug)]
pub(crate) struct RawGraphFile {
    pub file: File,
    pub path: PathBuf,
    pub num_nodes: usize,
    pub num_edges: u64,
    pub file_len: u64,
}

impl RawGraphFile {
    /// Opens `path`, validating magic, header consistency, the exact
    /// file length, and the cheap end-point CSR invariants (first
    /// offset 0, last offset = edge count) before any slice is read.
    pub fn open(path: &Path) -> Result<RawGraphFile, StoreError> {
        let io_err = |action: &'static str| {
            move |source: std::io::Error| StoreError::Io {
                path: path.to_path_buf(),
                action,
                source,
            }
        };
        let mut file = File::open(path).map_err(io_err("open"))?;
        let file_len = file.metadata().map_err(io_err("stat"))?.len();
        if file_len < GRAPH_HEADER_BYTES {
            return Err(StoreError::Truncated {
                path: path.to_path_buf(),
                expected: GRAPH_HEADER_BYTES,
                actual: file_len,
            });
        }
        let mut header = [0u8; 24];
        file.read_exact(&mut header)
            .map_err(io_err("read header"))?;
        if header[0..8] != GRAPH_FILE_MAGIC {
            return Err(StoreError::BadMagic {
                path: path.to_path_buf(),
            });
        }
        // ssl::allow(SSL001): `header` is a fixed [u8; 24] and every
        // call site passes at <= 16, so the 8-byte slice always fits.
        let field = |at: usize| u64::from_le_bytes(header[at..at + 8].try_into().expect("8 bytes"));
        let num_nodes = field(8);
        let num_edges = field(16);
        let bad = |reason: String| StoreError::BadHeader {
            path: path.to_path_buf(),
            reason,
        };
        if num_nodes > u32::MAX as u64 {
            return Err(bad(format!("node count {num_nodes} exceeds u32 ids")));
        }
        // Checked arithmetic: a corrupt header must fail typed, not
        // overflow past the truncation check.
        let expected = num_edges
            .checked_mul(GRAPH_ENTRY_BYTES)
            .and_then(|b| b.checked_add(edge_array_base(num_nodes)))
            .ok_or_else(|| {
                bad(format!(
                    "header implies an impossible size ({num_nodes} nodes, {num_edges} edges)"
                ))
            })?;
        if file_len != expected {
            return Err(StoreError::Truncated {
                path: path.to_path_buf(),
                expected,
                actual: file_len,
            });
        }
        // End-point CSR invariants are one positioned read each; the
        // interior (monotonicity, targets in range) is validated lazily
        // by the reads that touch it.
        let corrupt = |reason: String| StoreError::CorruptGraph {
            path: path.to_path_buf(),
            reason,
        };
        let read_u64_at = |file: &File, offset: u64| -> Result<u64, StoreError> {
            let mut buf = [0u8; 8];
            read_exact_at(file, &mut buf, offset).map_err(|source| StoreError::Io {
                path: path.to_path_buf(),
                action: "read offsets",
                source,
            })?;
            Ok(u64::from_le_bytes(buf))
        };
        let first = read_u64_at(&file, GRAPH_HEADER_BYTES)?;
        if first != 0 {
            return Err(corrupt(format!("first offset is {first}, expected 0")));
        }
        let last = read_u64_at(&file, GRAPH_HEADER_BYTES + num_nodes * GRAPH_ENTRY_BYTES)?;
        if last != num_edges {
            return Err(corrupt(format!(
                "last offset {last} disagrees with edge count {num_edges}"
            )));
        }
        Ok(RawGraphFile {
            file,
            path: path.to_path_buf(),
            num_nodes: num_nodes as usize,
            num_edges,
            file_len,
        })
    }
}

/// Positioned read helper shared by open-time validation and the page
/// read path: no shared cursor, safe from any thread.
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, offset)
    }
    #[cfg(not(unix))]
    {
        use std::io::{Read, Seek, SeekFrom};
        let mut clone = file.try_clone()?;
        clone.seek(SeekFrom::Start(offset))?;
        clone.read_exact(buf)
    }
}

/// A graph topology file opened once, shared by any number of threads.
///
/// The topology analogue of [`SharedFileStore`](crate::SharedFileStore):
/// constructed directly with [`SharedCsrFile::open_with`] or — the
/// usual path — deduplicated through a
/// [`StoreRegistry`](crate::StoreRegistry). Per-caller access goes
/// through [`FileTopology`](crate::FileTopology) handles (scoped
/// counters) or an [`IspSampleTopology`](crate::IspSampleTopology)
/// (device-side resolution); this type itself keeps no per-caller
/// state.
#[derive(Debug)]
pub struct SharedCsrFile {
    source: ReadSource,
    path: PathBuf,
    num_nodes: usize,
    num_edges: u64,
    file_len: u64,
    edge_base: u64,
    opts: FileStoreOptions,
    cache: ShardedPageCache,
    engine: Arc<ReadEngine>,
    prefetch: AtomicStoreStats,
}

impl SharedCsrFile {
    /// Opens `path` with default options and shard count.
    pub fn open(path: &Path) -> Result<SharedCsrFile, StoreError> {
        SharedCsrFile::open_with(
            path,
            FileStoreOptions::default(),
            crate::shared::DEFAULT_CACHE_SHARDS,
        )
    }

    /// Opens `path` through the full magic/header/length/end-point
    /// validation, striping the page cache over `shards` locks. Reads
    /// go through the process-wide [`ReadEngine`].
    pub fn open_with(
        path: &Path,
        opts: FileStoreOptions,
        shards: usize,
    ) -> Result<SharedCsrFile, StoreError> {
        SharedCsrFile::open_with_engine(path, opts, shards, Arc::clone(ReadEngine::global()))
    }

    /// Like [`SharedCsrFile::open_with`], but reads through a
    /// caller-supplied engine — conformance suites use this to sweep
    /// I/O worker counts.
    pub fn open_with_engine(
        path: &Path,
        opts: FileStoreOptions,
        shards: usize,
        engine: Arc<ReadEngine>,
    ) -> Result<SharedCsrFile, StoreError> {
        assert!(opts.page_bytes > 0, "page size must be positive");
        let raw = RawGraphFile::open(path)?;
        Ok(SharedCsrFile {
            source: ReadSource::new(raw.file, raw.path.clone()),
            edge_base: edge_array_base(raw.num_nodes as u64),
            path: raw.path,
            num_nodes: raw.num_nodes,
            num_edges: raw.num_edges,
            file_len: raw.file_len,
            opts,
            cache: ShardedPageCache::new(opts.cache_pages, shards),
            engine,
            prefetch: AtomicStoreStats::default(),
        })
    }

    /// The file this store reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configured options.
    pub fn options(&self) -> FileStoreOptions {
        self.opts
    }

    /// Number of nodes the graph holds.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges the graph holds.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Exact length of the backing file in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// Resident pages per cache shard.
    pub fn cache_occupancy(&self) -> Vec<usize> {
        self.cache.occupancy()
    }

    /// Total page capacity of the cache.
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Drops every cached page; the next read starts cold.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    fn corrupt(&self, reason: String) -> StoreError {
        StoreError::CorruptGraph {
            path: self.path.clone(),
            reason,
        }
    }

    fn check_node(&self, node: NodeId) -> Result<(), StoreError> {
        if node.index() >= self.num_nodes {
            return Err(StoreError::NodeOutOfRange {
                node,
                num_nodes: self.num_nodes,
            });
        }
        Ok(())
    }

    /// Byte range of the two adjacent offset entries of `node`
    /// (start + end of its neighbor slice; one 16-byte range).
    fn offset_pair_range(&self, node: NodeId) -> ByteRange {
        ByteRange {
            offset: GRAPH_HEADER_BYTES + node.index() as u64 * GRAPH_ENTRY_BYTES,
            len: 2 * GRAPH_ENTRY_BYTES,
        }
    }

    /// Byte range of edge entry `e` within the edge array.
    fn edge_entry_range(&self, e: u64) -> ByteRange {
        ByteRange {
            offset: self.edge_base + e * GRAPH_ENTRY_BYTES,
            len: GRAPH_ENTRY_BYTES,
        }
    }

    /// The distinct pages backing `ranges`, ascending with runs merged
    /// — the plan the read path resolves, exposed for the ISP tier's
    /// timing model. Pure address arithmetic.
    pub(crate) fn plan_pages_for(&self, ranges: &[ByteRange]) -> Vec<u64> {
        let pb = self.opts.page_bytes;
        let mut pages = Vec::with_capacity(ranges.len());
        for range in ranges {
            if let Some((first, last)) = range.blocks(pb) {
                pages.extend(first..=last);
            }
        }
        let mut plan = Vec::with_capacity(pages.len());
        for run in merge_page_runs(&pages) {
            plan.extend(run.first..run.end());
        }
        plan
    }

    /// Submits one positioned read per missing page stretch as a
    /// single engine batch; results come back in submission order (see
    /// [`SharedFileStore`](crate::SharedFileStore)'s identical helper).
    /// Successful stretches count into `io`; a failed stretch
    /// surfaces as its `Err` slot and counts nothing.
    fn fetch_runs(
        &self,
        runs: &[(u64, u64)],
        io: &mut StoreStats,
    ) -> Vec<Result<Vec<Arc<[u8]>>, std::io::Error>> {
        if runs.is_empty() {
            return Vec::new();
        }
        let pb = self.opts.page_bytes;
        let requests = runs
            .iter()
            .map(|&(first, count)| {
                let start = first * pb;
                ReadRequest {
                    source: self.source.clone(),
                    offset: start,
                    len: (count * pb).min(self.file_len - start) as usize,
                }
            })
            .collect();
        let results = self.engine.submit(requests).wait();
        runs.iter()
            .zip(results)
            .map(|(&(_, count), result)| {
                let buf = result?;
                io.pages_read += count;
                io.page_misses += count;
                io.bytes_read += buf.len() as u64;
                // Host-path split (Fig 10(a)): every page read from
                // media crosses the host link whole. The ISP topology
                // tier re-scopes the host side of this split after the
                // fact.
                io.device_bytes_read += buf.len() as u64;
                io.host_bytes_transferred += buf.len() as u64;
                Ok(buf.chunks(pb as usize).map(Arc::from).collect())
            })
            .collect()
    }

    /// Resolves `ranges` (each one or two u64 entries) to their LE
    /// values through the page cache: plan, coalesce, classify + fetch,
    /// assemble — the same discipline as the feature read path.
    fn read_entries(
        &self,
        ranges: &[ByteRange],
        io: &mut StoreStats,
    ) -> Result<Vec<u64>, StoreError> {
        let pb = self.opts.page_bytes;
        let mut pages = Vec::with_capacity(ranges.len());
        for range in ranges {
            if let Some((first, last)) = range.blocks(pb) {
                pages.extend(first..=last);
            }
        }
        let runs = merge_page_runs(&pages);
        // Classify: resident pages are hits (promoted now, staged as
        // cheap Arc clones so eviction in an undersized cache cannot
        // disturb assembly); each maximal stretch of missing pages
        // becomes one positioned read.
        let mut staged: HashMap<u64, Arc<[u8]>> = HashMap::new();
        let mut miss_runs: Vec<(u64, u64)> = Vec::new();
        for run in &runs {
            let mut p = run.first;
            while p < run.end() {
                if let Some(buf) = self.cache.get(p) {
                    io.page_hits += 1;
                    staged.insert(p, buf);
                    p += 1;
                    continue;
                }
                let mut q = p + 1;
                while q < run.end() && !self.cache.contains(q) {
                    q += 1;
                }
                miss_runs.push((p, q - p));
                p = q;
            }
        }
        // Fetch: the whole miss plan goes to the read engine as one
        // batch; order-preserving completion keeps staging and the
        // ascending cache commit identical to the serial path.
        let mut fetched: Vec<(u64, Arc<[u8]>)> = Vec::new();
        for (&(first, _), result) in miss_runs.iter().zip(self.fetch_runs(&miss_runs, io)) {
            let pages = result.map_err(|source| StoreError::Io {
                path: self.path.clone(),
                action: "read run",
                source,
            })?;
            for (i, page_buf) in pages.into_iter().enumerate() {
                staged.insert(first + i as u64, Arc::clone(&page_buf));
                fetched.push((first + i as u64, page_buf));
            }
        }
        // Assemble each entry from the staged pages (an entry may
        // straddle a page boundary under odd page sizes).
        let mut out = Vec::with_capacity(ranges.len() * 2);
        let mut entry = [0u8; 8];
        for range in ranges {
            let mut at = range.offset;
            while at < range.offset + range.len {
                let hi = (at + GRAPH_ENTRY_BYTES).min(range.offset + range.len);
                debug_assert_eq!(hi - at, GRAPH_ENTRY_BYTES, "ranges are whole entries");
                let (first, last) = ByteRange {
                    offset: at,
                    len: GRAPH_ENTRY_BYTES,
                }
                .blocks(pb)
                // ssl::allow(SSL001): GRAPH_ENTRY_BYTES is a nonzero
                // constant, so blocks() cannot return None.
                .expect("entries are non-empty");
                for page in first..=last {
                    let page_start = page * pb;
                    // ssl::allow(SSL001): the staging pass above
                    // inserted every page of every planned run.
                    let src = staged.get(&page).expect("planned page is staged");
                    let lo = at.max(page_start);
                    let end = hi.min(page_start + src.len() as u64);
                    entry[(lo - at) as usize..(end - at) as usize].copy_from_slice(
                        &src[(lo - page_start) as usize..(end - page_start) as usize],
                    );
                }
                out.push(u64::from_le_bytes(entry));
                at = hi;
            }
        }
        // Commit fetched pages to the cache in ascending page order.
        for (page, buf) in fetched {
            self.cache.insert(page, buf);
        }
        Ok(out)
    }

    /// Reads the `(start, end)` offset pair of every node in `nodes`,
    /// returning the pairs plus this call's exact **I/O** deltas (the
    /// caller owns the access-level counters — a topology tier may
    /// chain several raw reads into one logical operation). Validates
    /// node bounds before any I/O and the CSR monotone/EOF invariants
    /// on every pair it returns.
    pub fn offset_pairs(
        &self,
        nodes: &[NodeId],
    ) -> Result<(Vec<(u64, u64)>, StoreStats), StoreError> {
        for &node in nodes {
            self.check_node(node)?;
        }
        let ranges: Vec<ByteRange> = nodes.iter().map(|&n| self.offset_pair_range(n)).collect();
        let mut io = StoreStats::default();
        let entries = self.read_entries(&ranges, &mut io)?;
        let mut pairs = Vec::with_capacity(nodes.len());
        for (i, pair) in entries.chunks_exact(2).enumerate() {
            let (start, end) = (pair[0], pair[1]);
            if start > end {
                return Err(self.corrupt(format!(
                    "offsets out of monotone order at node {}: {start} > {end}",
                    nodes[i]
                )));
            }
            if end > self.num_edges {
                return Err(self.corrupt(format!(
                    "edge index {end} at node {} is past the end of the \
                     {}-entry edge array",
                    nodes[i], self.num_edges
                )));
            }
            pairs.push((start, end));
        }
        Ok((pairs, io))
    }

    /// Reads the neighbor ids at absolute edge indices `edges`,
    /// returning the ids plus this call's exact **I/O** deltas (access
    /// counters belong to the caller, as with
    /// [`SharedCsrFile::offset_pairs`]). Indices must already be
    /// validated against the owning node's offset pair (the callers
    /// do, via [`SharedCsrFile::offset_pairs`]).
    pub fn edge_targets(&self, edges: &[u64]) -> Result<(Vec<NodeId>, StoreStats), StoreError> {
        for &e in edges {
            if e >= self.num_edges {
                return Err(self.corrupt(format!(
                    "edge index {e} is past the end of the {}-entry edge array",
                    self.num_edges
                )));
            }
        }
        let ranges: Vec<ByteRange> = edges.iter().map(|&e| self.edge_entry_range(e)).collect();
        let mut io = StoreStats::default();
        let entries = self.read_entries(&ranges, &mut io)?;
        let mut out = Vec::with_capacity(edges.len());
        for (i, &raw) in entries.iter().enumerate() {
            if raw >= self.num_nodes as u64 {
                return Err(self.corrupt(format!(
                    "neighbor id {raw} at edge index {} is past the {}-node bound",
                    edges[i], self.num_nodes
                )));
            }
            out.push(NodeId::new(raw as u32));
        }
        Ok((out, io))
    }

    /// Resolves `(node, position)` picks end to end: the picked
    /// nodes' offset pairs locate (and validate) their slices, then
    /// the picked edge entries resolve in one run-merged read.
    /// Returns the neighbor ids, the absolute edge indices that were
    /// read (the ISP tier's page plan needs them), and the combined
    /// exact I/O deltas. Shared by
    /// [`FileTopology`](crate::FileTopology) and
    /// [`IspSampleTopology`](crate::IspSampleTopology) so the two
    /// tiers' validation and error wording can never drift.
    pub fn resolve_picks(
        &self,
        picks: &[(NodeId, u64)],
    ) -> Result<(Vec<NodeId>, Vec<u64>, StoreStats), StoreError> {
        let nodes: Vec<NodeId> = picks.iter().map(|&(n, _)| n).collect();
        let (pairs, mut io) = self.offset_pairs(&nodes)?;
        let mut edges = Vec::with_capacity(picks.len());
        for (&(node, k), &(start, end)) in picks.iter().zip(&pairs) {
            if k >= end - start {
                return Err(StoreError::PickOutOfRange {
                    node,
                    position: k,
                    degree: end - start,
                });
            }
            edges.push(start + k);
        }
        let (targets, edge_io) = self.edge_targets(&edges)?;
        io.accumulate(&edge_io);
        Ok((targets, edges, io))
    }

    /// Advisory read-ahead for the *next* hop: loads the offset-pair
    /// (degree) pages of `nodes` that are not yet resident, without
    /// promoting pages that are. This is the topology half of
    /// plan-ahead pipelining — the pipeline warms hop N+1's
    /// offset/degree pages while hop N's gathers run. I/O is counted
    /// in [`SharedCsrFile::prefetch_stats`], never in any caller's
    /// scoped stats; errors (including out-of-range nodes) are
    /// swallowed — the demand path surfaces real failures with full
    /// context.
    pub fn prefetch_offsets(&self, nodes: &[NodeId]) {
        let pb = self.opts.page_bytes;
        let mut pages = Vec::with_capacity(nodes.len());
        for &node in nodes {
            if node.index() >= self.num_nodes {
                continue;
            }
            if let Some((first, last)) = self.offset_pair_range(node).blocks(pb) {
                pages.extend(first..=last);
            }
        }
        let mut io = StoreStats::default();
        let mut miss_runs: Vec<(u64, u64)> = Vec::new();
        for run in merge_page_runs(&pages) {
            let mut p = run.first;
            while p < run.end() {
                if self.cache.contains(p) {
                    p += 1;
                    continue;
                }
                let mut q = p + 1;
                while q < run.end() && !self.cache.contains(q) {
                    q += 1;
                }
                miss_runs.push((p, q - p));
                p = q;
            }
        }
        // One engine batch for the whole advisory plan; failed
        // stretches are skipped (and uncounted) so prefetch_stats
        // always explains every resident page.
        for (&(first, _), result) in miss_runs.iter().zip(self.fetch_runs(&miss_runs, &mut io)) {
            let Ok(bufs) = result else { continue };
            for (i, buf) in bufs.into_iter().enumerate() {
                self.cache.insert(first + i as u64, buf);
            }
        }
        self.prefetch.add(&io);
    }

    /// I/O performed by background offset prefetches so far (never
    /// part of any caller's scoped stats).
    pub fn prefetch_stats(&self) -> StoreStats {
        self.prefetch.snapshot()
    }

    /// The page plan of an offset-pair batch (for the ISP timing
    /// model): the same distinct, run-merged pages
    /// [`SharedCsrFile::offset_pairs`] resolves.
    pub(crate) fn plan_offset_pages(&self, nodes: &[NodeId]) -> Vec<u64> {
        let ranges: Vec<ByteRange> = nodes.iter().map(|&n| self.offset_pair_range(n)).collect();
        self.plan_pages_for(&ranges)
    }

    /// The combined device page plan of one pick batch — every
    /// offset-pair and edge-entry page the picks touch, run-merged in
    /// a single pass (the ISP tier's timing-model input after
    /// [`SharedCsrFile::resolve_picks`]).
    pub(crate) fn plan_pick_pages(&self, picks: &[(NodeId, u64)], edges: &[u64]) -> Vec<u64> {
        let mut ranges: Vec<ByteRange> = picks
            .iter()
            .map(|&(n, _)| self.offset_pair_range(n))
            .collect();
        ranges.extend(edges.iter().map(|&e| self.edge_entry_range(e)));
        self.plan_pages_for(&ranges)
    }
}

/// Checks that a graph file and a feature file describe the same node
/// population; a mismatch fails typed, naming both files.
pub fn check_same_population(
    graph: &SharedCsrFile,
    features: &crate::SharedFileStore,
) -> Result<(), StoreError> {
    if graph.num_nodes() != features.num_nodes() {
        return Err(StoreError::NodeCountMismatch {
            graph: graph.path().to_path_buf(),
            graph_nodes: graph.num_nodes(),
            features: features.path().to_path_buf(),
            feature_nodes: features.num_nodes(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScratchFile;
    use smartsage_graph::generate::{generate_power_law, PowerLawConfig};

    fn graph(nodes: usize, seed: u64) -> CsrGraph {
        generate_power_law(&PowerLawConfig {
            nodes,
            avg_degree: 6.0,
            seed,
            ..PowerLawConfig::default()
        })
    }

    fn write_graph(tag: &str, g: &CsrGraph) -> ScratchFile {
        let file = ScratchFile::new(tag);
        write_graph_file(file.path(), g).unwrap();
        file
    }

    #[test]
    fn roundtrip_matches_the_in_memory_csr() {
        let g = graph(120, 0xA);
        let file = write_graph("roundtrip", &g);
        let shared = SharedCsrFile::open(file.path()).unwrap();
        assert_eq!(shared.num_nodes(), 120);
        assert_eq!(shared.num_edges(), g.num_edges());
        let nodes: Vec<NodeId> = (0..120u32).map(NodeId::new).collect();
        let (pairs, io) = shared.offset_pairs(&nodes).unwrap();
        assert!(io.bytes_read > 0);
        let mut picks = Vec::new();
        for (node, &(start, end)) in nodes.iter().zip(&pairs) {
            assert_eq!(end - start, g.degree(*node));
            for e in start..end {
                picks.push((*node, e));
            }
        }
        let edges: Vec<u64> = picks.iter().map(|&(_, e)| e).collect();
        let (targets, _) = shared.edge_targets(&edges).unwrap();
        let mut want = Vec::new();
        for node in g.node_ids() {
            want.extend_from_slice(g.neighbors(node));
        }
        assert_eq!(targets, want, "edge array round-trips bit-for-bit");
    }

    #[test]
    fn repeat_reads_hit_the_page_cache_and_deltas_are_exact() {
        let g = graph(200, 0xB);
        let file = write_graph("cache", &g);
        let shared = SharedCsrFile::open(file.path()).unwrap();
        let nodes: Vec<NodeId> = (0..200u32).map(NodeId::new).collect();
        let (_, cold) = shared.offset_pairs(&nodes).unwrap();
        assert!(cold.pages_read > 0);
        assert_eq!(cold.page_hits, 0);
        assert_eq!(cold.pages_read, cold.page_misses);
        let (_, warm) = shared.offset_pairs(&nodes).unwrap();
        assert_eq!(warm.pages_read, 0, "second pass reads nothing");
        assert_eq!(warm.page_hits + warm.page_misses, cold.page_misses);
        assert_eq!(
            shared.cache_occupancy().iter().sum::<usize>() as u64,
            cold.pages_read
        );
        shared.clear_cache();
        assert_eq!(shared.cache_occupancy().iter().sum::<usize>(), 0);
    }

    #[test]
    fn odd_page_sizes_resolve_identically() {
        let g = graph(64, 0xC);
        let file = write_graph("pagesizes", &g);
        let nodes: Vec<NodeId> = [63u32, 0, 17, 17, 5].map(NodeId::new).to_vec();
        let want = SharedCsrFile::open(file.path())
            .unwrap()
            .offset_pairs(&nodes)
            .unwrap()
            .0;
        for page_bytes in [512u64, 1024, 4096, 16384] {
            let shared = SharedCsrFile::open_with(
                file.path(),
                FileStoreOptions {
                    page_bytes,
                    cache_pages: 2,
                },
                2,
            )
            .unwrap();
            assert_eq!(
                shared.offset_pairs(&nodes).unwrap().0,
                want,
                "page size {page_bytes} diverged"
            );
        }
    }

    #[test]
    fn truncated_graph_file_names_file_and_expected_length() {
        let g = graph(40, 0xD);
        let file = write_graph("trunc", &g);
        let full = std::fs::metadata(file.path()).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(file.path())
            .unwrap()
            .set_len(full - 9)
            .unwrap();
        let err = SharedCsrFile::open(file.path()).unwrap_err();
        assert!(matches!(err, StoreError::Truncated { expected, actual, .. }
            if expected == full && actual == full - 9));
        let msg = err.to_string();
        assert!(msg.contains(file.path().to_str().unwrap()), "{msg}");
        assert!(msg.contains(&full.to_string()), "{msg}");
    }

    #[test]
    fn bad_magic_and_corrupt_endpoints_are_typed() {
        let file = ScratchFile::new("graph-magic");
        std::fs::write(file.path(), vec![0u8; GRAPH_HEADER_BYTES as usize]).unwrap();
        assert!(matches!(
            SharedCsrFile::open(file.path()).unwrap_err(),
            StoreError::BadMagic { .. }
        ));
        // A valid-length file whose last offset disagrees with the edge
        // count is corrupt, not truncated.
        let g = graph(10, 0xE);
        let file = write_graph("graph-endpoint", &g);
        let at = GRAPH_HEADER_BYTES + 10 * GRAPH_ENTRY_BYTES;
        let mut bytes = std::fs::read(file.path()).unwrap();
        bytes[at as usize..at as usize + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(file.path(), &bytes).unwrap();
        let err = SharedCsrFile::open(file.path()).unwrap_err();
        assert!(matches!(err, StoreError::CorruptGraph { .. }), "{err}");
        assert!(err.to_string().contains("last offset"), "{err}");
    }

    #[test]
    fn out_of_range_node_fails_before_io() {
        let g = graph(12, 0xF);
        let file = write_graph("range", &g);
        let shared = SharedCsrFile::open(file.path()).unwrap();
        let err = shared.offset_pairs(&[NodeId::new(12)]).unwrap_err();
        assert!(matches!(
            err,
            StoreError::NodeOutOfRange { num_nodes: 12, .. }
        ));
    }
}
