//! The in-storage sampling topology: hop expansion resolves inside the
//! (modeled) SSD, and only the sampled neighbor ids cross the host
//! link.
//!
//! [`FileTopology`](crate::FileTopology) is a Fig 10(a) system for the
//! edge-list half of the dataset: every offset/edge page a hop touches
//! is fetched from the device and shipped to the host whole. SmartSAGE
//! moves sampling into the device (paper §IV, Fig 11): firmware walks
//! the offset table and edge lists next to the SSD's DRAM page buffer
//! and DMAs back only the *result* of the hop — a dense packed list of
//! 8-byte neighbor ids — so scattered hops stop page-amplifying PCIe
//! traffic.
//!
//! [`IspSampleTopology`] models that tier on the real graph file:
//!
//! * **Values** come from the actual on-disk `SSGRPH01` file, resolved
//!   through a [`SharedCsrFile`] — the determinism contract holds, so
//!   sampling is bit-identical to the in-memory CSR. Those file reads
//!   are the *device's* media reads
//!   ([`StoreStats::device_bytes_read`]), never host traffic.
//! * **Host traffic** is only the packed payload: 8 bytes per degree
//!   answer (the host RNG needs the degrees to draw positions) and
//!   8 bytes per sampled neighbor id — never the pages they came from.
//! * **Time** is costed per batched read against a real
//!   [`smartsage_storage::Ssd`] component model in virtual time, with
//!   flash reads issued at up to
//!   [`IspGatherOptions::queue_depth`](crate::IspGatherOptions) in
//!   flight — the same [`cost_isp_pass`](crate::isp) sequence the ISP
//!   feature tier pays, accumulated in [`StoreStats::device_ns`] and
//!   [`IspSampleTopology::device_time`].
//!
//! Like [`IspGatherStore`](crate::IspGatherStore), the device timing
//! model keeps its own page-buffer LRU seeded only by this store's
//! reads, so the modeled cost of a run is a deterministic function of
//! its request sequence — shared payload-cache residency can never
//! leak scheduling noise into virtual time.

use crate::error::StoreError;
use crate::file::FileStoreOptions;
use crate::graph_file::SharedCsrFile;
use crate::isp::{cost_isp_pass, IspGatherOptions};
use crate::topology::{check_out_len, TopologyStore};
use crate::StoreStats;
use smartsage_graph::NodeId;
use smartsage_sim::{SimDuration, SimTime};
use smartsage_storage::Ssd;
use std::path::Path;
use std::sync::Arc;

/// Bytes per id/degree answer shipped over the modeled link.
const ENTRY_BYTES: u64 = crate::graph_file::GRAPH_ENTRY_BYTES;

/// A [`TopologyStore`] whose reads execute device-side against an SSD
/// timing model, shipping only packed degrees and sampled neighbor ids
/// to the host.
///
/// Construct one over a registry-shared [`SharedCsrFile`] with
/// [`IspSampleTopology::over`] (the pipeline's path — concurrent runs
/// then share one open file and one payload cache), or open a private
/// one straight from a graph file with [`IspSampleTopology::open`] /
/// [`IspSampleTopology::open_with`].
#[derive(Debug)]
pub struct IspSampleTopology {
    shared: Arc<SharedCsrFile>,
    ssd: Ssd,
    queue_depth: usize,
    pack_cost_per_row: SimDuration,
    /// Virtual device clock: each batched read starts where the
    /// previous one finished, so shared-resource contention (cores,
    /// channels, PCIe) accumulates across a run.
    clock: SimTime,
    device_time: SimDuration,
    stats: StoreStats,
}

impl IspSampleTopology {
    /// Wraps an already-open shared graph file in the ISP sampling
    /// tier, aligning the device model to the file geometry (flash
    /// pages are the store's I/O pages, the FTL covers the whole file,
    /// the device page buffer matches the payload cache capacity).
    pub fn over(shared: Arc<SharedCsrFile>, opts: IspGatherOptions) -> IspSampleTopology {
        assert!(opts.queue_depth > 0, "queue depth must be positive");
        let file_opts = shared.options();
        let mut params = opts.ssd;
        params.flash.page_bytes = file_opts.page_bytes;
        params.ftl.logical_pages = params
            .ftl
            .logical_pages
            .max(shared.file_len().div_ceil(file_opts.page_bytes).max(1));
        params.buffer_pages = file_opts.cache_pages;
        IspSampleTopology {
            shared,
            ssd: Ssd::new(params),
            queue_depth: opts.queue_depth,
            pack_cost_per_row: opts.pack_cost_per_row,
            clock: SimTime::ZERO,
            device_time: SimDuration::ZERO,
            stats: StoreStats::default(),
        }
    }

    /// Opens `path` privately with default file geometry and device
    /// parameters.
    pub fn open(path: &Path) -> Result<IspSampleTopology, StoreError> {
        IspSampleTopology::open_with(
            path,
            FileStoreOptions::default(),
            IspGatherOptions::default(),
        )
    }

    /// Opens `path` privately (its own file handle and single-shard
    /// payload cache) through the usual validation.
    pub fn open_with(
        path: &Path,
        file_opts: FileStoreOptions,
        opts: IspGatherOptions,
    ) -> Result<IspSampleTopology, StoreError> {
        let shared = Arc::new(SharedCsrFile::open_with(path, file_opts, 1)?);
        Ok(IspSampleTopology::over(shared, opts))
    }

    /// The shared graph file serving this tier's media reads.
    pub fn shared(&self) -> &Arc<SharedCsrFile> {
        &self.shared
    }

    /// The file this store reads from.
    pub fn path(&self) -> &Path {
        self.shared.path()
    }

    /// Total modeled device-side time across all reads so far.
    /// Survives [`TopologyStore::reset_stats`] along with the device
    /// state itself (resetting counters must not rewind the clock).
    pub fn device_time(&self) -> SimDuration {
        self.device_time
    }

    /// The composed device model (for inspecting component counters).
    pub fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    /// Costs one device pass and re-scopes `io`'s transfer split: the
    /// shared file accounted its page reads as host traffic (it is a
    /// host-path reader); here they happened inside the device, and
    /// only `shipped` packed bytes crossed the link.
    fn finish_pass(
        &mut self,
        mut io: StoreStats,
        pages: &[u64],
        rows: u64,
        shipped: u64,
    ) -> StoreStats {
        let busy = cost_isp_pass(
            &mut self.ssd,
            &mut self.clock,
            self.queue_depth,
            self.pack_cost_per_row,
            pages,
            rows,
            shipped,
        );
        self.device_time += busy;
        io.device_ns = busy.as_nanos();
        io.device_bytes_read = io.bytes_read;
        io.host_bytes_transferred = shipped;
        io
    }
}

impl TopologyStore for IspSampleTopology {
    fn num_nodes(&self) -> usize {
        self.shared.num_nodes()
    }

    fn num_edges(&self) -> u64 {
        self.shared.num_edges()
    }

    fn degrees_into(&mut self, nodes: &[NodeId], out: &mut [u64]) -> Result<(), StoreError> {
        check_out_len(nodes.len(), out)?;
        // Device-side offset walk; the host receives one packed 8-byte
        // degree per node (it draws the sample positions).
        let (pairs, io) = self.shared.offset_pairs(nodes)?;
        for (slot, (start, end)) in out.iter_mut().zip(pairs) {
            *slot = end - start;
        }
        let pages = self.shared.plan_offset_pages(nodes);
        let shipped = nodes.len() as u64 * ENTRY_BYTES;
        let mut io = self.finish_pass(io, &pages, nodes.len() as u64, shipped);
        io.gathers = 1;
        io.nodes_gathered = nodes.len() as u64;
        io.feature_bytes = shipped;
        self.stats.accumulate(&io);
        Ok(())
    }

    fn pick_neighbors_into(
        &mut self,
        picks: &[(NodeId, u64)],
        out: &mut [NodeId],
    ) -> Result<(), StoreError> {
        check_out_len(picks.len(), out)?;
        // The whole hop resolves inside the device: offset pairs locate
        // the slices, edge entries resolve the picks (shared with the
        // file tier via [`SharedCsrFile::resolve_picks`]), and only
        // the dense sampled-id list is DMAed back.
        let (targets, edges, io) = self.shared.resolve_picks(picks)?;
        out.copy_from_slice(&targets);
        // One device pass covers both the offset walk and the edge
        // reads (firmware chains them without surfacing to the host).
        let pages = self.shared.plan_pick_pages(picks, &edges);
        let shipped = picks.len() as u64 * ENTRY_BYTES;
        let mut io = self.finish_pass(io, &pages, picks.len() as u64, shipped);
        // One logical device command per batch, uniform with the other
        // tiers' access-counter convention.
        io.gathers = 1;
        io.nodes_gathered = picks.len() as u64;
        io.feature_bytes = shipped;
        self.stats.accumulate(&io);
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph_file::write_graph_file;
    use crate::topology::{FileTopology, InMemoryTopology};
    use crate::ScratchFile;
    use smartsage_graph::generate::{generate_power_law, PowerLawConfig};
    use smartsage_graph::CsrGraph;

    fn graph(nodes: usize, seed: u64) -> CsrGraph {
        generate_power_law(&PowerLawConfig {
            nodes,
            avg_degree: 6.0,
            seed,
            ..PowerLawConfig::default()
        })
    }

    fn write_graph(tag: &str, g: &CsrGraph) -> ScratchFile {
        let file = ScratchFile::new(tag);
        write_graph_file(file.path(), g).unwrap();
        file
    }

    #[test]
    fn isp_topology_matches_memory_bit_for_bit() {
        let g = graph(80, 0x90);
        let file = write_graph("isp-topo-equiv", &g);
        let mut mem = InMemoryTopology::new(g);
        let mut isp = IspSampleTopology::open(file.path()).unwrap();
        assert_eq!(isp.num_nodes(), mem.num_nodes());
        assert_eq!(isp.num_edges(), mem.num_edges());
        let nodes: Vec<NodeId> = (0..80u32).map(NodeId::new).collect();
        let mut want = vec![0u64; 80];
        let mut got = vec![0u64; 80];
        mem.degrees_into(&nodes, &mut want).unwrap();
        isp.degrees_into(&nodes, &mut got).unwrap();
        assert_eq!(got, want);
        let picks: Vec<(NodeId, u64)> = nodes
            .iter()
            .zip(&want)
            .filter(|&(_, &d)| d > 0)
            .map(|(&n, &d)| (n, d - 1))
            .collect();
        let mut want_n = vec![NodeId::default(); picks.len()];
        let mut got_n = vec![NodeId::default(); picks.len()];
        mem.pick_neighbors_into(&picks, &mut want_n).unwrap();
        isp.pick_neighbors_into(&picks, &mut got_n).unwrap();
        assert_eq!(got_n, want_n);
    }

    #[test]
    fn only_packed_ids_cross_the_host_link() {
        let g = graph(600, 0x91);
        let file = write_graph("isp-topo-host", &g);
        let mut isp = IspSampleTopology::open(file.path()).unwrap();
        let mut disk = FileTopology::open(file.path()).unwrap();
        // Scattered picks across the whole id space: the file tier
        // pays whole offset+edge pages per pick, the ISP tier ships
        // 8 bytes per answer.
        let nodes: Vec<NodeId> = (0..40u32).map(|i| NodeId::new(i * 14)).collect();
        let mut d_isp = vec![0u64; nodes.len()];
        let mut d_file = vec![0u64; nodes.len()];
        isp.degrees_into(&nodes, &mut d_isp).unwrap();
        disk.degrees_into(&nodes, &mut d_file).unwrap();
        assert_eq!(d_isp, d_file);
        let picks: Vec<(NodeId, u64)> = nodes
            .iter()
            .zip(&d_isp)
            .filter(|&(_, &d)| d > 0)
            .map(|(&n, _)| (n, 0))
            .collect();
        let mut out = vec![NodeId::default(); picks.len()];
        isp.pick_neighbors_into(&picks, &mut out).unwrap();
        disk.pick_neighbors_into(&picks, &mut out).unwrap();
        let (i, d) = (isp.stats(), disk.stats());
        assert_eq!(
            i.host_bytes_transferred,
            (nodes.len() + picks.len()) as u64 * 8,
            "isp ships packed answers only"
        );
        assert_eq!(d.host_bytes_transferred, d.bytes_read, "file ships pages");
        assert!(
            i.host_bytes_transferred < d.host_bytes_transferred,
            "isp host bytes {} must undercut the file tier's {}",
            i.host_bytes_transferred,
            d.host_bytes_transferred
        );
        assert!(i.transfer_reduction() > 1.0);
        assert!(i.device_ns > 0, "device passes cost modeled time");
        assert_eq!(isp.device_time().as_nanos(), i.device_ns);
        // Counters reset; the device clock does not rewind.
        isp.reset_stats();
        assert_eq!(isp.stats(), StoreStats::default());
        assert!(!isp.device_time().is_zero());
    }

    #[test]
    fn failed_reads_cost_nothing() {
        let g = graph(10, 0x92);
        let file = write_graph("isp-topo-err", &g);
        let mut isp = IspSampleTopology::open(file.path()).unwrap();
        let mut out = [0u64];
        assert!(isp.degrees_into(&[NodeId::new(10)], &mut out).is_err());
        assert_eq!(isp.stats(), StoreStats::default());
        assert!(isp.device_time().is_zero());
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn zero_queue_depth_is_rejected() {
        let g = graph(10, 0x93);
        let file = write_graph("isp-topo-qd", &g);
        let _ = IspSampleTopology::open_with(
            file.path(),
            FileStoreOptions::default(),
            IspGatherOptions {
                queue_depth: 0,
                ..IspGatherOptions::default()
            },
        );
    }
}
