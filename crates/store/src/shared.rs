//! The shared, thread-safe file store: one open feature file serving
//! every concurrent training job in the process.
//!
//! [`crate::FileStore`] is a single-owner store — private file handle,
//! private page cache, `&mut self` everywhere. SmartSAGE's premise is
//! the opposite: *many* training workers contending for *one* storage
//! device. [`SharedFileStore`] models that as a real concurrent
//! subsystem:
//!
//! * the file is opened once and read with **positioned reads** (no
//!   shared seek cursor to race on);
//! * the page cache is a lock-striped [`ShardedPageCache`] of
//!   immutable `Arc<[u8]>` pages, so parallel gathers only contend on
//!   the shards they actually touch;
//! * every operation takes `&self` and returns its **exact per-call
//!   I/O deltas**, which the caller's [`StoreHandle`](crate::StoreHandle)
//!   accumulates into *scoped* counters — no process-global state, no
//!   contamination between runs or sweeps;
//! * an advisory [`SharedFileStore::prefetch_nodes`] warms the cache in
//!   the background (accounted separately, never in a handle's stats).
//!
//! The determinism contract holds under any interleaving: page bytes
//! come from an immutable file, so gathers are bit-identical to
//! [`InMemoryStore`](crate::InMemoryStore) no matter which thread read
//! which page first. Only the *split* of lookups into hits and misses
//! (and hence bytes read) depends on scheduling; the totals remain
//! exact counts of what actually happened.

use crate::error::StoreError;
use crate::file::{FileStoreOptions, RawFeatureFile};
use crate::isp::RowScratchpad;
use crate::StoreStats;
use smartsage_graph::generate::community_of;
use smartsage_graph::NodeId;
use smartsage_hostio::{merge_page_runs, ReadEngine, ReadRequest, ReadSource, ShardedPageCache};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use crate::stats::AtomicStoreStats;

/// Default lock-stripe count of the shared page cache.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// A feature file opened once, shared by any number of threads.
///
/// Constructed directly with [`SharedFileStore::open_with`] or — the
/// usual path — deduplicated through a
/// [`StoreRegistry`](crate::StoreRegistry). Per-caller access goes
/// through [`StoreHandle`](crate::StoreHandle)s, which own the scoped
/// counters; this type itself only counts its background prefetch I/O.
#[derive(Debug)]
pub struct SharedFileStore {
    source: ReadSource,
    path: PathBuf,
    dim: usize,
    num_nodes: usize,
    num_classes: usize,
    file_len: u64,
    opts: FileStoreOptions,
    cache: ShardedPageCache,
    engine: Arc<ReadEngine>,
    prefetch: AtomicStoreStats,
    scratchpad: OnceLock<Arc<RowScratchpad>>,
}

impl SharedFileStore {
    /// Opens `path` with default options and shard count.
    pub fn open(path: &Path) -> Result<SharedFileStore, StoreError> {
        SharedFileStore::open_with(path, FileStoreOptions::default(), DEFAULT_CACHE_SHARDS)
    }

    /// Opens `path` through the same magic/header/length validation as
    /// [`crate::FileStore`], striping the page cache over `shards`
    /// locks (rounded up to a power of two). Reads go through the
    /// process-wide [`ReadEngine`].
    pub fn open_with(
        path: &Path,
        opts: FileStoreOptions,
        shards: usize,
    ) -> Result<SharedFileStore, StoreError> {
        SharedFileStore::open_with_engine(path, opts, shards, Arc::clone(ReadEngine::global()))
    }

    /// Like [`SharedFileStore::open_with`], but reads through a
    /// caller-supplied engine — conformance suites use this to sweep
    /// I/O worker counts.
    pub fn open_with_engine(
        path: &Path,
        opts: FileStoreOptions,
        shards: usize,
        engine: Arc<ReadEngine>,
    ) -> Result<SharedFileStore, StoreError> {
        assert!(opts.page_bytes > 0, "page size must be positive");
        let raw = RawFeatureFile::open(path)?;
        Ok(SharedFileStore {
            source: ReadSource::new(raw.file, raw.path.clone()),
            path: raw.path,
            dim: raw.dim,
            num_nodes: raw.num_nodes,
            num_classes: raw.num_classes,
            file_len: raw.file_len,
            opts,
            cache: ShardedPageCache::new(opts.cache_pages, shards),
            engine,
            prefetch: AtomicStoreStats::default(),
            scratchpad: OnceLock::new(),
        })
    }

    /// The host row scratchpad shared by every
    /// [`IspGatherStore`](crate::IspGatherStore) over this file,
    /// created on first use with the same byte budget as this store's
    /// page cache (`cache_pages × page_bytes`). File-tier callers never
    /// touch it, so it costs nothing unless the ISP tier runs.
    pub fn isp_scratchpad(&self) -> Arc<RowScratchpad> {
        Arc::clone(self.scratchpad.get_or_init(|| {
            Arc::new(RowScratchpad::new(
                self.opts.cache_pages as u64 * self.opts.page_bytes,
                self.dim as u64 * 4,
            ))
        }))
    }

    /// The file this store reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configured options.
    pub fn options(&self) -> FileStoreOptions {
        self.opts
    }

    /// Feature dimensionality of every row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of label classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of node rows the store holds.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The label (class) of `node`.
    pub fn label(&self, node: NodeId) -> usize {
        community_of(node, self.num_classes)
    }

    /// Exact length of the backing file in bytes (header + matrix).
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// Resident pages per cache shard (`reproduce`'s occupancy report).
    pub fn cache_occupancy(&self) -> Vec<usize> {
        self.cache.occupancy()
    }

    /// Total page capacity of the cache.
    pub fn cache_capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// Drops every cached page; the next gather starts cold. Counters
    /// are unaffected (they belong to handles, not the store).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// I/O performed by background prefetches so far (never part of any
    /// handle's scoped stats).
    pub fn prefetch_stats(&self) -> StoreStats {
        self.prefetch.snapshot()
    }

    /// The distinct pages backing `nodes`' rows, ascending with runs
    /// merged — the same plan `gather_into` resolves, exposed for the
    /// ISP tier's timing model. Pure address arithmetic; validates row
    /// bounds before returning anything.
    pub(crate) fn plan_pages(&self, nodes: &[NodeId]) -> Result<Vec<u64>, StoreError> {
        let pb = self.opts.page_bytes;
        let mut pages = Vec::with_capacity(nodes.len() * 2);
        for &node in nodes {
            let range = self.row_range(node)?;
            if let Some((first, last)) = range.blocks(pb) {
                pages.extend(first..=last);
            }
        }
        let mut plan = Vec::with_capacity(pages.len());
        for run in merge_page_runs(&pages) {
            plan.extend(run.first..run.end());
        }
        Ok(plan)
    }

    pub(crate) fn row_range(
        &self,
        node: NodeId,
    ) -> Result<smartsage_hostio::ByteRange, StoreError> {
        if node.index() >= self.num_nodes {
            return Err(StoreError::NodeOutOfRange {
                node,
                num_nodes: self.num_nodes,
            });
        }
        let row_bytes = self.dim as u64 * 4;
        Ok(smartsage_hostio::ByteRange {
            offset: crate::file::HEADER_BYTES + node.index() as u64 * row_bytes,
            len: row_bytes,
        })
    }

    /// Submits one positioned read per missing page stretch as a
    /// single engine batch and returns the per-stretch page buffers
    /// **in submission order** (the file's final page may be short).
    /// Successful stretches count into `io` exactly as the serial path
    /// did — one `(pages_read, page_misses, bytes)` delta per stretch;
    /// a failed stretch surfaces as its `Err` slot and counts nothing.
    fn fetch_runs(
        &self,
        runs: &[(u64, u64)],
        io: &mut StoreStats,
    ) -> Vec<Result<Vec<Arc<[u8]>>, std::io::Error>> {
        if runs.is_empty() {
            return Vec::new();
        }
        let pb = self.opts.page_bytes;
        let requests = runs
            .iter()
            .map(|&(first, count)| {
                let start = first * pb;
                ReadRequest {
                    source: self.source.clone(),
                    offset: start,
                    len: (count * pb).min(self.file_len - start) as usize,
                }
            })
            .collect();
        let results = self.engine.submit(requests).wait();
        runs.iter()
            .zip(results)
            .map(|(&(_, count), result)| {
                let buf = result?;
                io.pages_read += count;
                io.page_misses += count;
                io.bytes_read += buf.len() as u64;
                // Host-path split: the device read these pages from
                // media and shipped them to the host whole (Fig
                // 10(a)). The ISP tier re-scopes the host side of this
                // split after the fact.
                io.device_bytes_read += buf.len() as u64;
                io.host_bytes_transferred += buf.len() as u64;
                Ok(buf.chunks(pb as usize).map(Arc::from).collect())
            })
            .collect()
    }

    /// Gathers the feature rows of `nodes` into `out` (row-major,
    /// `nodes.len() × dim`), returning this call's **exact** counter
    /// deltas — access counts and the I/O it caused. The caller (a
    /// [`StoreHandle`](crate::StoreHandle)) owns where those deltas
    /// accumulate; the shared store keeps no per-caller state.
    pub fn gather_into(&self, nodes: &[NodeId], out: &mut [f32]) -> Result<StoreStats, StoreError> {
        if out.len() != nodes.len() * self.dim {
            return Err(StoreError::BadBuffer {
                expected: nodes.len() * self.dim,
                actual: out.len(),
            });
        }
        let pb = self.opts.page_bytes;
        let mut io = StoreStats::default();
        // Plan: every page the batch touches, deduplicated and merged
        // into contiguous runs. Row bounds are validated here, before
        // any I/O.
        let mut pages = Vec::with_capacity(nodes.len() * 2);
        for &node in nodes {
            let range = self.row_range(node)?;
            if let Some((first, last)) = range.blocks(pb) {
                pages.extend(first..=last);
            }
        }
        let runs = merge_page_runs(&pages);
        // Classify. A cache probe atomically hands back the page
        // payload on a hit (promoting it), so a concurrent eviction
        // can never invalidate bytes mid-assembly; each maximal
        // stretch of missing pages becomes one positioned read.
        let mut staged: HashMap<u64, Arc<[u8]>> = HashMap::new();
        let mut miss_runs: Vec<(u64, u64)> = Vec::new();
        for run in &runs {
            let mut p = run.first;
            while p < run.end() {
                if let Some(buf) = self.cache.get(p) {
                    io.page_hits += 1;
                    staged.insert(p, buf);
                    p += 1;
                    continue;
                }
                let mut q = p + 1;
                while q < run.end() && !self.cache.contains(q) {
                    q += 1;
                }
                miss_runs.push((p, q - p));
                p = q;
            }
        }
        // Fetch: the whole miss plan goes to the read engine as one
        // batch — stretches resolve concurrently across I/O workers,
        // but the completion hands results back in submission order,
        // so staging (and the ascending cache commit below) is
        // bit-identical to executing the stretches serially.
        let mut fetched: Vec<(u64, Arc<[u8]>)> = Vec::new();
        for (&(first, _), result) in miss_runs.iter().zip(self.fetch_runs(&miss_runs, &mut io)) {
            let pages = result.map_err(|source| StoreError::Io {
                path: self.path.clone(),
                action: "read run",
                source,
            })?;
            for (i, page_buf) in pages.into_iter().enumerate() {
                staged.insert(first + i as u64, Arc::clone(&page_buf));
                fetched.push((first + i as u64, page_buf));
            }
        }
        // Resolve: assemble each row from the staged pages.
        let mut row_buf = vec![0u8; self.dim * 4];
        for (row, &node) in nodes.iter().enumerate() {
            let range = self.row_range(node)?;
            // ssl::allow(SSL001): open() rejects dim == 0, so every row
            // range has len > 0 and blocks() cannot return None.
            let (first, last) = range.blocks(pb).expect("rows are non-empty");
            for page in first..=last {
                let page_start = page * pb;
                // ssl::allow(SSL001): the staging pass above inserted
                // every page of every planned run before resolution.
                let src = staged.get(&page).expect("planned page is staged");
                let lo = range.offset.max(page_start);
                let hi = (range.offset + range.len).min(page_start + src.len() as u64);
                row_buf[(lo - range.offset) as usize..(hi - range.offset) as usize]
                    .copy_from_slice(&src[(lo - page_start) as usize..(hi - page_start) as usize]);
            }
            let out_row = &mut out[row * self.dim..(row + 1) * self.dim];
            for (v, chunk) in out_row.iter_mut().zip(row_buf.chunks_exact(4)) {
                // ssl::allow(SSL001): chunks_exact(4) yields 4-byte
                // slices by construction.
                *v = f32::from_le_bytes(chunk.try_into().expect("4 bytes"));
            }
        }
        // Commit fetched pages to the cache in ascending page order
        // (fetches were collected run by run, so they already are).
        for (page, buf) in fetched {
            self.cache.insert(page, buf);
        }
        io.gathers = 1;
        io.nodes_gathered = nodes.len() as u64;
        io.feature_bytes = nodes.len() as u64 * self.dim as u64 * 4;
        Ok(io)
    }

    /// Advisory read-ahead: loads the pages backing `nodes` that are
    /// not yet resident, without promoting pages that are (a prefetch
    /// must not distort recency). I/O is counted in
    /// [`SharedFileStore::prefetch_stats`], never in a handle's scoped
    /// stats. Errors (including out-of-range nodes) are swallowed —
    /// prefetching is a hint, and the demand path will surface any real
    /// failure with full context.
    pub fn prefetch_nodes(&self, nodes: &[NodeId]) {
        let pb = self.opts.page_bytes;
        let mut pages = Vec::with_capacity(nodes.len() * 2);
        for &node in nodes {
            let Ok(range) = self.row_range(node) else {
                continue;
            };
            if let Some((first, last)) = range.blocks(pb) {
                pages.extend(first..=last);
            }
        }
        let mut io = StoreStats::default();
        let mut miss_runs: Vec<(u64, u64)> = Vec::new();
        for run in merge_page_runs(&pages) {
            let mut p = run.first;
            while p < run.end() {
                if self.cache.contains(p) {
                    p += 1;
                    continue;
                }
                let mut q = p + 1;
                while q < run.end() && !self.cache.contains(q) {
                    q += 1;
                }
                miss_runs.push((p, q - p));
                p = q;
            }
        }
        // One engine batch for the whole advisory plan. A failed
        // stretch is skipped (and uncounted) while the rest still
        // land, so prefetch_stats always explains every resident page.
        for (&(first, _), result) in miss_runs.iter().zip(self.fetch_runs(&miss_runs, &mut io)) {
            let Ok(bufs) = result else { continue };
            for (i, buf) in bufs.into_iter().enumerate() {
                self.cache.insert(first + i as u64, buf);
            }
        }
        self.prefetch.add(&io);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{write_feature_file, FeatureStore, InMemoryStore, ScratchFile};
    use smartsage_graph::FeatureTable;

    fn write_table(tag: &str, dim: usize, nodes: usize) -> (ScratchFile, FeatureTable) {
        let table = FeatureTable::new(dim, 3, 0xFEED);
        let path = ScratchFile::new(tag);
        write_feature_file(path.path(), &table, nodes).unwrap();
        (path, table)
    }

    #[test]
    fn shared_gathers_match_memory_bit_for_bit() {
        let (path, table) = write_table("shared-equiv", 7, 40);
        let store = SharedFileStore::open(path.path()).unwrap();
        let nodes: Vec<NodeId> = [3u32, 0, 39, 3, 17].map(NodeId::new).to_vec();
        let mut got = vec![0.0; nodes.len() * 7];
        let io = store.gather_into(&nodes, &mut got).unwrap();
        let want = InMemoryStore::new(table, 40).gather(&nodes).unwrap();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got), bits(&want));
        assert_eq!(io.gathers, 1);
        assert_eq!(io.nodes_gathered, 5);
        assert!(io.bytes_read > 0);
        assert_eq!(store.label(NodeId::new(5)), 5 % 3);
    }

    #[test]
    fn per_call_deltas_are_exact_and_cache_is_shared() {
        let (path, _) = write_table("shared-deltas", 16, 64);
        let store = SharedFileStore::open(path.path()).unwrap();
        let nodes: Vec<NodeId> = (0..64u32).map(NodeId::new).collect();
        let mut buf = vec![0.0; 64 * 16];
        let cold = store.gather_into(&nodes, &mut buf).unwrap();
        assert!(cold.pages_read > 0);
        assert_eq!(cold.page_hits, 0);
        let warm = store.gather_into(&nodes, &mut buf).unwrap();
        assert_eq!(warm.pages_read, 0, "second pass reads nothing");
        assert_eq!(warm.page_hits + warm.page_misses, cold.page_misses);
        assert_eq!(
            store.cache_occupancy().iter().sum::<usize>() as u64,
            cold.pages_read
        );
    }

    #[test]
    fn prefetch_warms_the_cache_without_touching_gather_stats() {
        let (path, _) = write_table("shared-prefetch", 8, 32);
        let store = SharedFileStore::open(path.path()).unwrap();
        let nodes: Vec<NodeId> = (0..32u32).map(NodeId::new).collect();
        store.prefetch_nodes(&nodes);
        let pf = store.prefetch_stats();
        assert!(pf.pages_read > 0 && pf.bytes_read > 0);
        let mut buf = vec![0.0; 32 * 8];
        let io = store.gather_into(&nodes, &mut buf).unwrap();
        assert_eq!(io.page_misses, 0, "everything was prefetched");
        assert_eq!(io.pages_read, 0);
        assert!(io.page_hits > 0);
        // Prefetching resident pages again is a no-op.
        store.prefetch_nodes(&nodes);
        assert_eq!(store.prefetch_stats().pages_read, pf.pages_read);
        // Out-of-range nodes are ignored, not fatal.
        store.prefetch_nodes(&[NodeId::new(1000)]);
    }

    #[test]
    fn concurrent_gathers_are_bit_identical_and_counters_sum() {
        let (path, table) = write_table("shared-conc", 5, 50);
        let store = Arc::new(
            SharedFileStore::open_with(
                path.path(),
                FileStoreOptions {
                    page_bytes: 512,
                    cache_pages: 8, // smaller than the file: real eviction churn
                },
                4,
            )
            .unwrap(),
        );
        let nodes: Vec<NodeId> = (0..50u32).map(NodeId::new).collect();
        let want = InMemoryStore::new(table, 50).gather(&nodes).unwrap();
        let totals: Vec<StoreStats> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let store = Arc::clone(&store);
                    let nodes = nodes.clone();
                    let want = want.clone();
                    s.spawn(move || {
                        let mut sum = StoreStats::default();
                        let mut buf = vec![0.0; nodes.len() * 5];
                        for _ in 0..20 {
                            let io = store.gather_into(&nodes, &mut buf).unwrap();
                            assert_eq!(buf, want, "gather diverged under contention");
                            sum.accumulate(&io);
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut all = StoreStats::default();
        for t in &totals {
            all.accumulate(t);
        }
        assert_eq!(all.gathers, 160);
        assert_eq!(all.nodes_gathered, 160 * 50);
        // Every planned page lookup is classified exactly once.
        let lookups_per_gather = {
            let range_pages = |n: u32| {
                let r = store.row_range(NodeId::new(n)).unwrap();
                let (f, l) = r.blocks(512).unwrap();
                f..=l
            };
            let mut pages: Vec<u64> = Vec::new();
            for n in 0..50u32 {
                pages.extend(range_pages(n));
            }
            pages.sort_unstable();
            pages.dedup();
            pages.len() as u64
        };
        assert_eq!(all.page_hits + all.page_misses, 160 * lookups_per_gather);
        assert_eq!(all.pages_read, all.page_misses);
    }
}
