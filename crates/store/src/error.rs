//! Typed errors for feature-store I/O.
//!
//! Every fallible store operation returns a [`StoreError`] — no store
//! implementation is allowed to `unwrap` an I/O result. Errors carry
//! enough context to be actionable: the file path, the expected and
//! observed sizes, the offending node id.

use smartsage_graph::NodeId;
use std::fmt;
use std::io;
use std::path::PathBuf;

/// An error raised by a [`FeatureStore`](crate::FeatureStore).
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io {
        /// The file being operated on.
        path: PathBuf,
        /// What the store was doing when it failed.
        action: &'static str,
        /// The OS error.
        source: io::Error,
    },
    /// The feature file's magic bytes are wrong — not a feature file.
    BadMagic {
        /// The file that was opened.
        path: PathBuf,
    },
    /// The feature file's header fields are inconsistent.
    BadHeader {
        /// The file that was opened.
        path: PathBuf,
        /// What is wrong with it.
        reason: String,
    },
    /// The feature file is shorter (or longer) than its header promises.
    Truncated {
        /// The file that was opened.
        path: PathBuf,
        /// The exact length the header implies.
        expected: u64,
        /// The length found on disk.
        actual: u64,
    },
    /// A registry open requested different store options than the
    /// already-open shared store for the same content key: handing out
    /// the existing store would silently run the caller's I/O
    /// accounting against a geometry (page size, cache capacity) it
    /// did not configure.
    OptionsConflict {
        /// The feature file both callers want.
        path: PathBuf,
        /// The options this open requested.
        requested: crate::file::FileStoreOptions,
        /// The options the store is already open with.
        open: crate::file::FileStoreOptions,
    },
    /// A graph file's CSR content is internally inconsistent — offsets
    /// out of monotone order, an edge index past the end of the edge
    /// array, or a neighbor id past the node count. Raised at the read
    /// that discovers it, never as a panic or a partial batch.
    CorruptGraph {
        /// The graph file being read.
        path: PathBuf,
        /// What is wrong with it.
        reason: String,
    },
    /// A graph file and a feature file that are supposed to describe
    /// the same dataset disagree on the node count.
    NodeCountMismatch {
        /// The graph (topology) file.
        graph: PathBuf,
        /// Nodes the graph file holds.
        graph_nodes: usize,
        /// The feature file.
        features: PathBuf,
        /// Nodes the feature file holds.
        feature_nodes: usize,
    },
    /// A neighbor pick's position is not below its node's degree —
    /// a caller bug (a plan resolved against the wrong graph), kept
    /// distinct from [`StoreError::CorruptGraph`] so it is never
    /// misattributed to file corruption. Raised uniformly by every
    /// topology tier.
    PickOutOfRange {
        /// The node whose neighbor list was picked from.
        node: NodeId,
        /// The requested position.
        position: u64,
        /// The node's actual degree.
        degree: u64,
    },
    /// A gather requested a node the store does not hold.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes the store holds.
        num_nodes: usize,
    },
    /// An output buffer's length disagrees with `nodes.len() * dim`.
    BadBuffer {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        actual: usize,
    },
    /// A shard manifest names a file that does not exist (or cannot be
    /// opened). Raised per shard so the message always names the
    /// missing file and its position in the manifest.
    ShardMissing {
        /// The shard file the manifest points at.
        path: PathBuf,
        /// The shard's index in the manifest.
        shard: usize,
        /// The OS error that surfaced when opening it.
        source: io::Error,
    },
    /// A shard manifest's node ranges do not tile the node space:
    /// a gap, an overlap, an inverted range, or endpoints that miss
    /// `0..num_nodes`.
    ShardLayout {
        /// The shard file whose range is at fault.
        path: PathBuf,
        /// The shard's index in the manifest.
        shard: usize,
        /// What is wrong with the layout.
        reason: String,
    },
    /// A shard file's on-disk geometry disagrees with the manifest or
    /// its sibling shards (wrong node count for its range, mismatched
    /// feature dim/classes, mismatched global node count).
    ShardGeometry {
        /// The offending shard file.
        path: PathBuf,
        /// The shard's index in the manifest.
        shard: usize,
        /// What disagrees.
        reason: String,
    },
    /// The feature side and the graph side of a sharded dataset are
    /// partitioned differently — scatter/gather cannot route one plan
    /// over both.
    ShardCountMismatch {
        /// The first graph shard file (names the graph partition).
        graph: PathBuf,
        /// Graph shard count.
        graph_shards: usize,
        /// The first feature shard file (names the feature partition).
        features: PathBuf,
        /// Feature shard count.
        feature_shards: usize,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io {
                path,
                action,
                source,
            } => {
                write!(f, "feature file '{}': {action}: {source}", path.display())
            }
            StoreError::BadMagic { path } => {
                write!(
                    f,
                    "feature file '{}': bad magic (not a SmartSAGE feature file)",
                    path.display()
                )
            }
            StoreError::BadHeader { path, reason } => {
                write!(
                    f,
                    "feature file '{}': invalid header: {reason}",
                    path.display()
                )
            }
            StoreError::Truncated {
                path,
                expected,
                actual,
            } => write!(
                f,
                "feature file '{}' is truncated or corrupt: expected exactly \
                 {expected} bytes, found {actual}",
                path.display()
            ),
            StoreError::OptionsConflict {
                path,
                requested,
                open,
            } => {
                write!(
                    f,
                    "feature file '{}' is already open with {open:?}; refusing to hand it \
                     out for a request with {requested:?}",
                    path.display()
                )
            }
            StoreError::CorruptGraph { path, reason } => {
                write!(f, "graph file '{}' is corrupt: {reason}", path.display())
            }
            StoreError::NodeCountMismatch {
                graph,
                graph_nodes,
                features,
                feature_nodes,
            } => {
                write!(
                    f,
                    "graph file '{}' holds {graph_nodes} nodes but feature file '{}' \
                     holds {feature_nodes}; refusing to sample a mismatched dataset",
                    graph.display(),
                    features.display()
                )
            }
            StoreError::PickOutOfRange {
                node,
                position,
                degree,
            } => {
                write!(
                    f,
                    "neighbor pick {position} at node {node:?} is out of range for \
                     degree {degree}"
                )
            }
            StoreError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node:?} out of range for a {num_nodes}-node store")
            }
            StoreError::BadBuffer { expected, actual } => {
                write!(
                    f,
                    "gather buffer holds {actual} elements, need exactly {expected}"
                )
            }
            StoreError::ShardMissing {
                path,
                shard,
                source,
            } => {
                write!(
                    f,
                    "shard {shard} file '{}' is missing or unopenable: {source}",
                    path.display()
                )
            }
            StoreError::ShardLayout {
                path,
                shard,
                reason,
            } => {
                write!(
                    f,
                    "shard {shard} file '{}' breaks the shard layout: {reason}",
                    path.display()
                )
            }
            StoreError::ShardGeometry {
                path,
                shard,
                reason,
            } => {
                write!(
                    f,
                    "shard {shard} file '{}' has mismatched geometry: {reason}",
                    path.display()
                )
            }
            StoreError::ShardCountMismatch {
                graph,
                graph_shards,
                features,
                feature_shards,
            } => {
                write!(
                    f,
                    "graph partition '{}' has {graph_shards} shard(s) but feature \
                     partition '{}' has {feature_shards}; refusing to scatter one \
                     plan across mismatched partitions",
                    graph.display(),
                    features.display()
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } | StoreError::ShardMissing { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_message_names_file_and_expected_length() {
        let e = StoreError::Truncated {
            path: PathBuf::from("/tmp/feat.bin"),
            expected: 8192,
            actual: 100,
        };
        let msg = e.to_string();
        assert!(msg.contains("/tmp/feat.bin"), "{msg}");
        assert!(msg.contains("8192"), "{msg}");
        assert!(msg.contains("100"), "{msg}");
    }

    #[test]
    fn io_error_preserves_source() {
        let e = StoreError::Io {
            path: PathBuf::from("x"),
            action: "read page",
            source: io::Error::new(io::ErrorKind::NotFound, "gone"),
        };
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("read page"));
    }
}
