//! The in-memory feature store: today's `FeatureTable`, zero I/O.

use crate::error::StoreError;
use crate::{FeatureStore, StoreStats};
use smartsage_graph::{FeatureTable, NodeId};

/// A [`FeatureStore`] over the synthetic [`FeatureTable`].
///
/// Rows are produced directly into the caller's buffer — there is no
/// copy of the table anywhere, so the I/O counters of [`StoreStats`]
/// stay zero; only the access counters advance.
///
/// # Example
///
/// ```
/// use smartsage_graph::{FeatureTable, NodeId};
/// use smartsage_store::{FeatureStore, InMemoryStore};
/// let mut s = InMemoryStore::new(FeatureTable::new(8, 4, 1), 100);
/// let rows = s.gather(&[NodeId::new(3), NodeId::new(7)]).unwrap();
/// assert_eq!(rows.len(), 16);
/// assert!(s.gather(&[NodeId::new(100)]).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct InMemoryStore {
    table: FeatureTable,
    num_nodes: usize,
    stats: StoreStats,
}

impl InMemoryStore {
    /// Wraps `table`, serving nodes `0..num_nodes`.
    pub fn new(table: FeatureTable, num_nodes: usize) -> InMemoryStore {
        InMemoryStore {
            table,
            num_nodes,
            stats: StoreStats::default(),
        }
    }

    /// Wraps `table` with no node bound — any id resolves (the table is
    /// synthesized per node, so every id has a row). Used by the
    /// `FeatureTable`-based trainer API, which historically had no
    /// bound.
    pub fn unbounded(table: FeatureTable) -> InMemoryStore {
        InMemoryStore::new(table, usize::MAX)
    }

    /// The wrapped table.
    pub fn table(&self) -> &FeatureTable {
        &self.table
    }
}

impl FeatureStore for InMemoryStore {
    fn dim(&self) -> usize {
        self.table.dim()
    }

    fn num_classes(&self) -> usize {
        self.table.num_classes()
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn label(&self, node: NodeId) -> usize {
        self.table.label(node)
    }

    fn gather_into(&mut self, nodes: &[NodeId], out: &mut [f32]) -> Result<(), StoreError> {
        let dim = self.table.dim();
        if out.len() != nodes.len() * dim {
            return Err(StoreError::BadBuffer {
                expected: nodes.len() * dim,
                actual: out.len(),
            });
        }
        for (row, &node) in nodes.iter().enumerate() {
            if node.index() >= self.num_nodes {
                return Err(StoreError::NodeOutOfRange {
                    node,
                    num_nodes: self.num_nodes,
                });
            }
            self.table
                .features_into(node, &mut out[row * dim..(row + 1) * dim]);
        }
        self.stats.gathers += 1;
        self.stats.nodes_gathered += nodes.len() as u64;
        self.stats.feature_bytes += nodes.len() as u64 * self.table.bytes_per_node();
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_table_exactly() {
        let table = FeatureTable::new(6, 3, 9);
        let mut store = InMemoryStore::new(table.clone(), 50);
        let nodes = [NodeId::new(1), NodeId::new(4), NodeId::new(1)];
        let got = store.gather(&nodes).unwrap();
        assert_eq!(got, table.gather(&nodes));
        assert_eq!(store.label(NodeId::new(4)), table.label(NodeId::new(4)));
    }

    #[test]
    fn counters_track_accesses_only() {
        let mut store = InMemoryStore::new(FeatureTable::new(4, 2, 0), 10);
        store.gather(&[NodeId::new(0), NodeId::new(1)]).unwrap();
        store.gather(&[NodeId::new(2)]).unwrap();
        let s = store.stats();
        assert_eq!(s.gathers, 2);
        assert_eq!(s.nodes_gathered, 3);
        assert_eq!(s.feature_bytes, 3 * 4 * 4);
        assert_eq!(s.pages_read + s.bytes_read + s.page_hits + s.page_misses, 0);
        store.reset_stats();
        assert_eq!(store.stats(), StoreStats::default());
    }

    #[test]
    fn out_of_range_is_a_typed_error() {
        let mut store = InMemoryStore::new(FeatureTable::new(4, 2, 0), 3);
        let err = store.gather(&[NodeId::new(3)]).unwrap_err();
        assert!(matches!(err, StoreError::NodeOutOfRange { .. }));
        // A failed gather leaves the counters untouched.
        assert_eq!(store.stats().gathers, 0);
    }

    #[test]
    fn bad_buffer_is_rejected() {
        let mut store = InMemoryStore::unbounded(FeatureTable::new(4, 2, 0));
        let mut buf = vec![0.0; 3];
        let err = store.gather_into(&[NodeId::new(0)], &mut buf).unwrap_err();
        assert!(matches!(
            err,
            StoreError::BadBuffer {
                expected: 4,
                actual: 3
            }
        ));
    }
}
