//! The file-backed feature store: real page-aligned storage I/O.
//!
//! # On-disk layout
//!
//! A feature file is one page-aligned header followed by the dense
//! row-major feature matrix (mirroring the on-SSD graph layout of
//! [`smartsage_hostio::layout`], where the edge array starts
//! block-aligned after the offset table):
//!
//! ```text
//! offset 0      magic  "SSFEAT01"            (8 bytes)
//! offset 8      dim         u64 LE
//! offset 16     num_nodes   u64 LE
//! offset 24     num_classes u64 LE
//! offset 32     zero padding to 4096
//! offset 4096   node 0 row: dim × f32 LE
//!               node 1 row …
//! ```
//!
//! Node `i`'s row lives at byte `4096 + i·dim·4`; the file is exactly
//! `4096 + num_nodes·dim·4` bytes. A file whose length disagrees with
//! its header fails to open with [`StoreError::Truncated`] naming the
//! file and the expected length.
//!
//! # Read path
//!
//! A batch gather is planned, coalesced, resolved:
//!
//! 1. **Plan** — compute every row's byte range and the distinct pages
//!    it spans (pure address arithmetic via
//!    [`smartsage_hostio::ByteRange`]).
//! 2. **Coalesce** — merge the missing pages into maximal contiguous
//!    runs ([`smartsage_hostio::merge_page_runs`]); resident pages are
//!    exact-LRU cache hits ([`smartsage_hostio::LruSet`] ordering).
//! 3. **Resolve** — one `read` syscall per contiguous missing run,
//!    page-aligned; rows are then assembled from cached + fetched
//!    pages. Values are byte-identical to
//!    [`InMemoryStore`](crate::InMemoryStore) by the determinism
//!    contract.

use crate::error::StoreError;
use crate::{FeatureStore, StoreStats};
use smartsage_graph::generate::community_of;
use smartsage_graph::{FeatureTable, NodeId};
use smartsage_hostio::{
    merge_page_runs, ByteRange, ReadEngine, ReadRequest, ReadSource, ShardedPageCache,
};
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes identifying a feature file (versioned).
pub const FEATURE_FILE_MAGIC: [u8; 8] = *b"SSFEAT01";

/// Bytes reserved for the header; the feature matrix starts here, so
/// rows are page-aligned with respect to the default 4 KiB page.
pub const HEADER_BYTES: u64 = 4096;

/// Tuning knobs for [`FileStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStoreOptions {
    /// I/O granularity: reads are issued in whole `page_bytes` units
    /// aligned to multiples of `page_bytes` within the file.
    pub page_bytes: u64,
    /// Page-cache capacity in pages (0 disables caching entirely).
    pub cache_pages: usize,
}

impl Default for FileStoreOptions {
    fn default() -> Self {
        FileStoreOptions {
            page_bytes: 4096,
            cache_pages: 1024,
        }
    }
}

/// Serializes `table`'s first `num_nodes` rows to `path` in the layout
/// above. Overwrites any existing file.
pub fn write_feature_file(
    path: &Path,
    table: &FeatureTable,
    num_nodes: usize,
) -> Result<(), StoreError> {
    let io_err = |action: &'static str| {
        move |source: std::io::Error| StoreError::Io {
            path: path.to_path_buf(),
            action,
            source,
        }
    };
    let file = File::create(path).map_err(io_err("create"))?;
    let mut w = BufWriter::new(file);
    let mut header = [0u8; HEADER_BYTES as usize];
    header[0..8].copy_from_slice(&FEATURE_FILE_MAGIC);
    header[8..16].copy_from_slice(&(table.dim() as u64).to_le_bytes());
    header[16..24].copy_from_slice(&(num_nodes as u64).to_le_bytes());
    header[24..32].copy_from_slice(&(table.num_classes() as u64).to_le_bytes());
    w.write_all(&header).map_err(io_err("write header"))?;
    let mut row = vec![0.0f32; table.dim()];
    let mut bytes = vec![0u8; table.dim() * 4];
    for i in 0..num_nodes {
        table.features_into(NodeId::new(i as u32), &mut row);
        for (chunk, v) in bytes.chunks_exact_mut(4).zip(&row) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        w.write_all(&bytes).map_err(io_err("write row"))?;
    }
    w.flush().map_err(io_err("flush"))?;
    Ok(())
}

/// Serializes the rows of the global node range `start..end` of
/// `table` to `path` as a standalone feature-shard file. The shard
/// file is a perfectly ordinary `SSFEAT01` file holding `end - start`
/// rows at **local** indices — local row `j` is global node
/// `start + j` — so every existing open path validates it unchanged.
/// An empty range writes a valid zero-row file (shards may be empty
/// when there are more shards than nodes). Overwrites any existing
/// file.
pub fn write_feature_shard(
    path: &Path,
    table: &FeatureTable,
    start: usize,
    end: usize,
) -> Result<(), StoreError> {
    assert!(start <= end, "inverted shard range {start}..{end}");
    let io_err = |action: &'static str| {
        move |source: std::io::Error| StoreError::Io {
            path: path.to_path_buf(),
            action,
            source,
        }
    };
    let file = File::create(path).map_err(io_err("create"))?;
    let mut w = BufWriter::new(file);
    let mut header = [0u8; HEADER_BYTES as usize];
    header[0..8].copy_from_slice(&FEATURE_FILE_MAGIC);
    header[8..16].copy_from_slice(&(table.dim() as u64).to_le_bytes());
    header[16..24].copy_from_slice(&((end - start) as u64).to_le_bytes());
    header[24..32].copy_from_slice(&(table.num_classes() as u64).to_le_bytes());
    w.write_all(&header).map_err(io_err("write header"))?;
    let mut row = vec![0.0f32; table.dim()];
    let mut bytes = vec![0u8; table.dim() * 4];
    for i in start..end {
        table.features_into(NodeId::new(i as u32), &mut row);
        for (chunk, v) in bytes.chunks_exact_mut(4).zip(&row) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
        w.write_all(&bytes).map_err(io_err("write row"))?;
    }
    w.flush().map_err(io_err("flush"))?;
    Ok(())
}

/// An opened, fully validated feature file: the raw handle plus its
/// header fields. Shared by [`FileStore`] and the concurrent
/// [`SharedFileStore`](crate::SharedFileStore) so the two open paths
/// can never drift in what they accept.
#[derive(Debug)]
pub(crate) struct RawFeatureFile {
    pub file: File,
    pub path: PathBuf,
    pub dim: usize,
    pub num_nodes: usize,
    pub num_classes: usize,
    pub file_len: u64,
}

impl RawFeatureFile {
    /// Opens `path`, validating magic, header consistency, and the
    /// exact file length before any row can be read.
    pub fn open(path: &Path) -> Result<RawFeatureFile, StoreError> {
        let io_err = |action: &'static str| {
            move |source: std::io::Error| StoreError::Io {
                path: path.to_path_buf(),
                action,
                source,
            }
        };
        let mut file = File::open(path).map_err(io_err("open"))?;
        let file_len = file.metadata().map_err(io_err("stat"))?.len();
        if file_len < HEADER_BYTES {
            return Err(StoreError::Truncated {
                path: path.to_path_buf(),
                expected: HEADER_BYTES,
                actual: file_len,
            });
        }
        let mut header = [0u8; 32];
        file.read_exact(&mut header)
            .map_err(io_err("read header"))?;
        if header[0..8] != FEATURE_FILE_MAGIC {
            return Err(StoreError::BadMagic {
                path: path.to_path_buf(),
            });
        }
        // ssl::allow(SSL001): `header` is a fixed [u8; 32] and every
        // call site passes at <= 24, so the 8-byte slice always fits.
        let field = |at: usize| u64::from_le_bytes(header[at..at + 8].try_into().expect("8 bytes"));
        let dim = field(8);
        let num_nodes = field(16);
        let num_classes = field(24);
        let bad = |reason: String| StoreError::BadHeader {
            path: path.to_path_buf(),
            reason,
        };
        if dim == 0 || dim > u32::MAX as u64 {
            return Err(bad(format!("feature dimension {dim} out of range")));
        }
        if num_classes == 0 {
            return Err(bad("zero label classes".to_string()));
        }
        if num_nodes > u32::MAX as u64 {
            return Err(bad(format!("node count {num_nodes} exceeds u32 ids")));
        }
        // Checked arithmetic: a corrupt header must fail typed, not
        // overflow past the truncation check.
        let expected = num_nodes
            .checked_mul(dim)
            .and_then(|b| b.checked_mul(4))
            .and_then(|b| b.checked_add(HEADER_BYTES))
            .ok_or_else(|| {
                bad(format!(
                    "header implies an impossible size ({num_nodes} nodes × {dim} features)"
                ))
            })?;
        if file_len != expected {
            return Err(StoreError::Truncated {
                path: path.to_path_buf(),
                expected,
                actual: file_len,
            });
        }
        Ok(RawFeatureFile {
            file,
            path: path.to_path_buf(),
            dim: dim as usize,
            num_nodes: num_nodes as usize,
            num_classes: num_classes as usize,
            file_len,
        })
    }
}

/// A [`FeatureStore`] over an on-disk feature file.
#[derive(Debug)]
pub struct FileStore {
    source: ReadSource,
    path: PathBuf,
    dim: usize,
    num_nodes: usize,
    num_classes: usize,
    file_len: u64,
    opts: FileStoreOptions,
    // The same exact-LRU payload cache the shared store stripes over N
    // shards — a single shard here, since FileStore is single-owner.
    cache: ShardedPageCache,
    engine: Arc<ReadEngine>,
    stats: StoreStats,
}

impl FileStore {
    /// Opens `path` with default options (4 KiB pages, 4 MiB cache).
    pub fn open(path: &Path) -> Result<FileStore, StoreError> {
        FileStore::open_with(path, FileStoreOptions::default())
    }

    /// Opens `path`, validating magic, header consistency, and the
    /// exact file length before any row can be read. Reads go through
    /// the process-wide [`ReadEngine`] — even a single-owner store
    /// overlaps its miss stretches across the I/O workers.
    pub fn open_with(path: &Path, opts: FileStoreOptions) -> Result<FileStore, StoreError> {
        assert!(opts.page_bytes > 0, "page size must be positive");
        let raw = RawFeatureFile::open(path)?;
        Ok(FileStore {
            source: ReadSource::new(raw.file, raw.path.clone()),
            path: raw.path,
            dim: raw.dim,
            num_nodes: raw.num_nodes,
            num_classes: raw.num_classes,
            file_len: raw.file_len,
            opts,
            cache: ShardedPageCache::new(opts.cache_pages, 1),
            engine: Arc::clone(ReadEngine::global()),
            stats: StoreStats::default(),
        })
    }

    /// The file this store reads from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configured options.
    pub fn options(&self) -> FileStoreOptions {
        self.opts
    }

    /// Byte range of `node`'s feature row within the file.
    fn row_range(&self, node: NodeId) -> Result<ByteRange, StoreError> {
        if node.index() >= self.num_nodes {
            return Err(StoreError::NodeOutOfRange {
                node,
                num_nodes: self.num_nodes,
            });
        }
        let row_bytes = self.dim as u64 * 4;
        Ok(ByteRange {
            offset: HEADER_BYTES + node.index() as u64 * row_bytes,
            len: row_bytes,
        })
    }

    /// Submits one positioned read per missing page stretch as a
    /// single engine batch; results come back in submission order, so
    /// staging stays identical to reading the stretches serially.
    /// Successful stretches count into `stats`; the first failure is
    /// surfaced after counting the successes before it.
    fn fetch_runs(&mut self, runs: &[(u64, u64)]) -> Result<Vec<Vec<Arc<[u8]>>>, StoreError> {
        if runs.is_empty() {
            return Ok(Vec::new());
        }
        let pb = self.opts.page_bytes;
        let requests = runs
            .iter()
            .map(|&(first, count)| {
                let start = first * pb;
                ReadRequest {
                    source: self.source.clone(),
                    offset: start,
                    len: (count * pb).min(self.file_len - start) as usize,
                }
            })
            .collect();
        let results = self.engine.submit(requests).wait();
        let mut out = Vec::with_capacity(runs.len());
        for (&(_, count), result) in runs.iter().zip(results) {
            let buf = result.map_err(|source| StoreError::Io {
                path: self.path.clone(),
                action: "read run",
                source,
            })?;
            self.stats.pages_read += count;
            self.stats.page_misses += count;
            self.stats.bytes_read += buf.len() as u64;
            // Host path (Fig 10(a)): every page read from media crosses
            // the host link whole.
            self.stats.device_bytes_read += buf.len() as u64;
            self.stats.host_bytes_transferred += buf.len() as u64;
            out.push(buf.chunks(pb as usize).map(Arc::from).collect());
        }
        Ok(out)
    }
}

impl FeatureStore for FileStore {
    fn dim(&self) -> usize {
        self.dim
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    fn label(&self, node: NodeId) -> usize {
        community_of(node, self.num_classes)
    }

    fn gather_into(&mut self, nodes: &[NodeId], out: &mut [f32]) -> Result<(), StoreError> {
        if out.len() != nodes.len() * self.dim {
            return Err(StoreError::BadBuffer {
                expected: nodes.len() * self.dim,
                actual: out.len(),
            });
        }
        let pb = self.opts.page_bytes;
        // Plan: every page the batch touches, deduplicated and merged
        // into contiguous runs. Row bounds are validated here, before
        // any I/O.
        let mut pages = Vec::with_capacity(nodes.len() * 2);
        for &node in nodes {
            let range = self.row_range(node)?;
            if let Some((first, last)) = range.blocks(pb) {
                pages.extend(first..=last);
            }
        }
        let runs = merge_page_runs(&pages);
        // Classify: resident pages are hits (promoted now, and staged
        // as cheap Arc clones so eviction in an undersized cache
        // cannot disturb assembly); each maximal stretch of missing
        // pages becomes one positioned read.
        let mut staged: HashMap<u64, Arc<[u8]>> = HashMap::new();
        let mut miss_runs: Vec<(u64, u64)> = Vec::new();
        for run in &runs {
            let mut p = run.first;
            while p < run.end() {
                if let Some(buf) = self.cache.get(p) {
                    self.stats.page_hits += 1;
                    staged.insert(p, buf);
                    p += 1;
                    continue;
                }
                let mut q = p + 1;
                while q < run.end() && !self.cache.contains(q) {
                    q += 1;
                }
                miss_runs.push((p, q - p));
                p = q;
            }
        }
        // Fetch: the whole miss plan goes to the read engine as one
        // batch; the order-preserving completion keeps staging and the
        // ascending cache commit identical to the serial path.
        let mut fetched: Vec<(u64, Arc<[u8]>)> = Vec::new();
        for ((first, _), pages) in miss_runs.iter().zip(self.fetch_runs(&miss_runs)?) {
            for (i, page_buf) in pages.into_iter().enumerate() {
                staged.insert(first + i as u64, Arc::clone(&page_buf));
                fetched.push((first + i as u64, page_buf));
            }
        }
        // Resolve: assemble each row from the staged pages.
        let mut row_buf = vec![0u8; self.dim * 4];
        for (row, &node) in nodes.iter().enumerate() {
            let range = self.row_range(node)?;
            // ssl::allow(SSL001): open() rejects dim == 0, so every row
            // range has len > 0 and blocks() cannot return None.
            let (first, last) = range.blocks(pb).expect("rows are non-empty");
            for page in first..=last {
                let page_start = page * pb;
                // ssl::allow(SSL001): the staging pass above inserted
                // every page of every planned run before resolution.
                let src = staged.get(&page).expect("planned page is staged");
                let lo = range.offset.max(page_start);
                let hi = (range.offset + range.len).min(page_start + src.len() as u64);
                row_buf[(lo - range.offset) as usize..(hi - range.offset) as usize]
                    .copy_from_slice(&src[(lo - page_start) as usize..(hi - page_start) as usize]);
            }
            let out_row = &mut out[row * self.dim..(row + 1) * self.dim];
            for (v, chunk) in out_row.iter_mut().zip(row_buf.chunks_exact(4)) {
                // ssl::allow(SSL001): chunks_exact(4) yields 4-byte
                // slices by construction.
                *v = f32::from_le_bytes(chunk.try_into().expect("4 bytes"));
            }
        }
        // Commit fetched pages to the cache in ascending page order
        // (collected run by run, so they already are).
        for (page, buf) in fetched {
            self.cache.insert(page, buf);
        }
        self.stats.gathers += 1;
        self.stats.nodes_gathered += nodes.len() as u64;
        self.stats.feature_bytes += nodes.len() as u64 * self.dim as u64 * 4;
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InMemoryStore, ScratchFile};

    fn write_table(
        tag: &str,
        dim: usize,
        classes: usize,
        nodes: usize,
    ) -> (ScratchFile, FeatureTable) {
        let table = FeatureTable::new(dim, classes, 0xBEEF);
        let path = ScratchFile::new(tag);
        write_feature_file(path.path(), &table, nodes).unwrap();
        (path, table)
    }

    #[test]
    fn roundtrip_is_bit_identical_to_the_table() {
        let (path, table) = write_table("roundtrip", 7, 3, 40);
        let mut store = FileStore::open(path.path()).unwrap();
        let nodes: Vec<NodeId> = [3u32, 0, 39, 3, 17].map(NodeId::new).to_vec();
        let got = store.gather(&nodes).unwrap();
        let want = InMemoryStore::new(table, 40).gather(&nodes).unwrap();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got), bits(&want));
        assert_eq!(store.num_nodes(), 40);
        assert_eq!(store.num_classes(), 3);
        assert_eq!(store.label(NodeId::new(5)), 5 % 3);
    }

    #[test]
    fn repeat_gathers_hit_the_page_cache() {
        let (path, _) = write_table("hits", 16, 2, 64);
        let mut store = FileStore::open(path.path()).unwrap();
        let nodes: Vec<NodeId> = (0..64u32).map(NodeId::new).collect();
        store.gather(&nodes).unwrap();
        let cold = store.stats();
        assert!(cold.pages_read > 0);
        assert!(cold.bytes_read >= cold.pages_read * 4096 - 4096);
        store.gather(&nodes).unwrap();
        let warm = store.stats();
        assert_eq!(
            warm.pages_read, cold.pages_read,
            "second pass reads nothing"
        );
        assert!(warm.page_hits > cold.page_hits);
        assert!(warm.hit_rate() > 0.0);
    }

    #[test]
    fn zero_capacity_cache_rereads_every_time() {
        let (path, _) = write_table("nocache", 8, 2, 16);
        let mut store = FileStore::open_with(
            path.path(),
            FileStoreOptions {
                page_bytes: 4096,
                cache_pages: 0,
            },
        )
        .unwrap();
        let nodes: Vec<NodeId> = (0..16u32).map(NodeId::new).collect();
        store.gather(&nodes).unwrap();
        let first = store.stats().pages_read;
        store.gather(&nodes).unwrap();
        assert_eq!(store.stats().pages_read, 2 * first);
        assert_eq!(store.stats().page_hits, 0);
    }

    #[test]
    fn odd_page_sizes_still_resolve_identically() {
        let (path, table) = write_table("pagesizes", 5, 2, 33);
        let nodes: Vec<NodeId> = [32u32, 1, 16, 8, 8, 0].map(NodeId::new).to_vec();
        let want = InMemoryStore::new(table, 33).gather(&nodes).unwrap();
        for page_bytes in [512u64, 1024, 4096, 16384, 1 << 20] {
            let mut store = FileStore::open_with(
                path.path(),
                FileStoreOptions {
                    page_bytes,
                    cache_pages: 3,
                },
            )
            .unwrap();
            let got = store.gather(&nodes).unwrap();
            assert_eq!(got, want, "page size {page_bytes} diverged");
        }
    }

    #[test]
    fn truncated_file_error_names_file_and_expected_length() {
        let (path, _) = write_table("trunc", 8, 2, 20);
        let full = std::fs::metadata(path.path()).unwrap().len();
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(path.path())
            .unwrap();
        f.set_len(full - 13).unwrap();
        drop(f);
        let err = FileStore::open(path.path()).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, StoreError::Truncated { expected, actual, .. }
            if expected == full && actual == full - 13));
        assert!(
            msg.contains(path.path().to_str().unwrap()),
            "message must name the file: {msg}"
        );
        assert!(
            msg.contains(&full.to_string()),
            "message must name the expected length: {msg}"
        );
    }

    #[test]
    fn bad_magic_and_short_header_are_typed() {
        let path = ScratchFile::new("magic");
        std::fs::write(path.path(), vec![0u8; HEADER_BYTES as usize]).unwrap();
        assert!(matches!(
            FileStore::open(path.path()).unwrap_err(),
            StoreError::BadMagic { .. }
        ));
        std::fs::write(path.path(), b"short").unwrap();
        assert!(matches!(
            FileStore::open(path.path()).unwrap_err(),
            StoreError::Truncated { expected, actual: 5, .. } if expected == HEADER_BYTES
        ));
        let err = FileStore::open(Path::new("/nonexistent/feat.fbin")).unwrap_err();
        assert!(matches!(err, StoreError::Io { action: "open", .. }));
    }

    #[test]
    fn corrupt_header_fields_are_rejected() {
        let path = ScratchFile::new("header");
        let mut bytes = vec![0u8; HEADER_BYTES as usize];
        bytes[0..8].copy_from_slice(&FEATURE_FILE_MAGIC);
        // dim = 0
        std::fs::write(path.path(), &bytes).unwrap();
        assert!(matches!(
            FileStore::open(path.path()).unwrap_err(),
            StoreError::BadHeader { .. }
        ));
        // classes = 0 with a valid dim
        bytes[8..16].copy_from_slice(&4u64.to_le_bytes());
        std::fs::write(path.path(), &bytes).unwrap();
        assert!(matches!(
            FileStore::open(path.path()).unwrap_err(),
            StoreError::BadHeader { .. }
        ));
    }

    #[test]
    fn overflowing_header_size_is_rejected_not_wrapped() {
        // dim and num_nodes individually pass the u32 bound but their
        // product overflows u64: must fail typed, never wrap around the
        // truncation check (release) or panic (debug).
        let path = ScratchFile::new("overflow");
        let mut bytes = vec![0u8; HEADER_BYTES as usize];
        bytes[0..8].copy_from_slice(&FEATURE_FILE_MAGIC);
        bytes[8..16].copy_from_slice(&(1u64 << 31).to_le_bytes()); // dim
        bytes[16..24].copy_from_slice(&(1u64 << 31).to_le_bytes()); // nodes
        bytes[24..32].copy_from_slice(&2u64.to_le_bytes()); // classes
        std::fs::write(path.path(), &bytes).unwrap();
        let err = FileStore::open(path.path()).unwrap_err();
        assert!(matches!(err, StoreError::BadHeader { .. }), "{err}");
        assert!(err.to_string().contains("impossible size"), "{err}");
    }

    #[test]
    fn out_of_range_node_fails_before_io() {
        let (path, _) = write_table("range", 4, 2, 5);
        let mut store = FileStore::open(path.path()).unwrap();
        let err = store.gather(&[NodeId::new(5)]).unwrap_err();
        assert!(matches!(
            err,
            StoreError::NodeOutOfRange { num_nodes: 5, .. }
        ));
        assert_eq!(store.stats().bytes_read, 0, "no I/O for invalid gathers");
    }
}
