//! Per-caller handles onto a [`SharedFileStore`].
//!
//! A handle is where *scoped accounting* lives: the shared store
//! returns exact per-call deltas and keeps no per-caller state, so two
//! runs (or two sweeps, or two tests) sharing one store can never
//! contaminate each other's counters — each reads its own handle.

use crate::error::StoreError;
use crate::shared::SharedFileStore;
use crate::{FeatureStore, StoreStats};
use smartsage_graph::NodeId;
use std::sync::Arc;

/// A [`FeatureStore`] view of a [`SharedFileStore`] with private,
/// scoped counters.
///
/// Cheap to create (an `Arc` clone plus zeroed counters): make one per
/// run, per worker, or per test — wherever an exact, isolated
/// [`StoreStats`] is wanted. All handles of one store share its page
/// cache and file descriptor.
#[derive(Debug)]
pub struct StoreHandle {
    shared: Arc<SharedFileStore>,
    stats: StoreStats,
}

impl StoreHandle {
    /// A fresh handle with zeroed counters.
    pub fn new(shared: Arc<SharedFileStore>) -> StoreHandle {
        StoreHandle {
            shared,
            stats: StoreStats::default(),
        }
    }

    /// The shared store behind this handle.
    pub fn shared(&self) -> &Arc<SharedFileStore> {
        &self.shared
    }
}

impl FeatureStore for StoreHandle {
    fn dim(&self) -> usize {
        self.shared.dim()
    }

    fn num_classes(&self) -> usize {
        self.shared.num_classes()
    }

    fn num_nodes(&self) -> usize {
        self.shared.num_nodes()
    }

    fn label(&self, node: NodeId) -> usize {
        self.shared.label(node)
    }

    fn gather_into(&mut self, nodes: &[NodeId], out: &mut [f32]) -> Result<(), StoreError> {
        let io = self.shared.gather_into(nodes, out)?;
        self.stats.accumulate(&io);
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{write_feature_file, ScratchFile};
    use smartsage_graph::FeatureTable;

    #[test]
    fn handles_share_the_cache_but_not_the_counters() {
        let table = FeatureTable::new(6, 2, 42);
        let file = ScratchFile::new("handle");
        write_feature_file(file.path(), &table, 20).unwrap();
        let shared = Arc::new(SharedFileStore::open(file.path()).unwrap());
        let mut a = StoreHandle::new(Arc::clone(&shared));
        let mut b = StoreHandle::new(Arc::clone(&shared));
        let nodes: Vec<NodeId> = (0..20u32).map(NodeId::new).collect();
        a.gather(&nodes).unwrap();
        // Handle B sees a warm shared cache...
        b.gather(&nodes).unwrap();
        assert!(a.stats().page_misses > 0);
        assert_eq!(b.stats().page_misses, 0, "B rides A's cached pages");
        assert!(b.stats().page_hits > 0);
        // ...but scoped counters never bleed between handles.
        assert_eq!(a.stats().gathers, 1);
        assert_eq!(b.stats().gathers, 1);
        b.reset_stats();
        assert_eq!(b.stats(), StoreStats::default());
        assert_eq!(a.stats().gathers, 1, "resetting B cannot touch A");
        assert_eq!(a.dim(), 6);
        assert_eq!(a.num_classes(), 2);
        assert_eq!(a.num_nodes(), 20);
        assert_eq!(a.label(NodeId::new(3)), 3 % 2);
    }

    #[test]
    fn failed_gathers_count_nothing() {
        let table = FeatureTable::new(4, 2, 1);
        let file = ScratchFile::new("handle-err");
        write_feature_file(file.path(), &table, 5).unwrap();
        let shared = Arc::new(SharedFileStore::open(file.path()).unwrap());
        let mut h = StoreHandle::new(shared);
        assert!(h.gather(&[NodeId::new(5)]).is_err());
        assert_eq!(h.stats(), StoreStats::default());
    }
}
