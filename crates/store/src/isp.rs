//! The in-storage-processing feature store: gathers resolve inside the
//! (modeled) SSD, and only packed feature rows cross the host link.
//!
//! [`crate::FileStore`] and [`crate::SharedFileStore`] are Fig 10(a)
//! systems: every page a gather touches is fetched from the device and
//! shipped to the host *whole*, so SSD→host traffic is page-amplified
//! relative to the payload. SmartSAGE's headline mechanism (paper §IV,
//! Fig 10(b)) moves the gather into the device: firmware reads the
//! pages from flash into the SSD's DRAM page buffer, picks the feature
//! rows out next to that buffer, and DMAs back a dense packed result —
//! an order of magnitude less PCIe traffic for scattered accesses.
//!
//! [`IspGatherStore`] models that tier on the *real* feature path:
//!
//! * **Values** come from the actual on-disk `SSFEAT01` file, resolved
//!   through a [`SharedFileStore`] — the determinism contract holds, so
//!   gathers are bit-identical to every other store. Those file reads
//!   are the *device's* media reads: they count as
//!   [`StoreStats::device_bytes_read`], never as host traffic.
//! * **Host traffic** is only the packed payload: rows the host does
//!   not already hold cross the modeled PCIe link at `dim × 4` bytes
//!   each ([`StoreStats::host_bytes_transferred`]). The host driver
//!   keeps a [`RowScratchpad`] — the same DRAM budget the file tier
//!   spends on its page cache, but keyed by node row, so a resident
//!   row is served host-side and never re-shipped. Because pages carry
//!   padding and never-requested neighbor rows while the scratchpad
//!   holds only requested rows, the ISP tier's host bytes undercut the
//!   file tier's for the same gather sequence.
//! * **Time** is costed per gather against a real
//!   [`smartsage_storage::Ssd`] component model in virtual time: one
//!   ISP command decode on the embedded cores, an FTL lookup per page,
//!   flash page reads issued with up to
//!   [`IspGatherOptions::queue_depth`] requests in flight (channel
//!   parallelism, exactly like the edge-list ISP cost policy), page-buffer
//!   hits served from SSD DRAM, a per-row pack cost on the cores, and
//!   finally the result DMA. The accumulated busy time is reported in
//!   [`StoreStats::device_ns`] and [`IspGatherStore::device_time`].
//!
//! The device timing model keeps its *own* page-buffer LRU
//! ([`smartsage_storage::PageBuffer`]) seeded only by this store's
//! gathers, so the modeled cost of a gather is a deterministic
//! function of the rows it had to ship — the residency of the shared
//! *payload* cache can never leak scheduling noise into virtual time.
//! Which rows miss, however, is decided by the shared [`RowScratchpad`]
//! (and hence, under concurrent runs over one file, by interleaving —
//! exactly like the hit/miss split of the shared page cache): a serial
//! run's `device_ns` is fully reproducible, a parallel sweep's is an
//! exact account of what happened.

use crate::error::StoreError;
use crate::file::FileStoreOptions;
use crate::shared::SharedFileStore;
use crate::{FeatureStore, StoreStats};
use smartsage_graph::NodeId;
use smartsage_hostio::{LockExt, LruSet};
use smartsage_sim::{SimDuration, SimTime};
use smartsage_storage::{Ssd, SsdParams};
use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// The host driver's row-granular gather scratchpad.
///
/// The file tier spends its host DRAM budget on a *page* cache: every
/// resident byte is a page byte, requested or not. The ISP host driver
/// receives *packed rows*, so it keeps the same byte budget keyed by
/// node instead (the user-space-scratchpad idiom of SmartSAGE (SW),
/// paper §IV-C): a row that already crossed PCIe is served from host
/// DRAM and never re-shipped. One scratchpad is shared by every ISP
/// run over the same feature file
/// ([`SharedFileStore::isp_scratchpad`]), exactly like the file tier's
/// shared page cache — the sweep's concurrent jobs model workers on
/// one host.
///
/// Residency is exact-LRU in rows (capacity = budget bytes ÷ row
/// bytes); payloads are immutable `Arc<[f32]>` rows, so a hit is a
/// refcount bump and eviction can never invalidate bytes mid-copy.
#[derive(Debug)]
pub struct RowScratchpad {
    capacity_rows: usize,
    inner: Mutex<ScratchInner>,
}

#[derive(Debug)]
struct ScratchInner {
    order: LruSet<u32>,
    rows: HashMap<u32, Arc<[f32]>>,
}

impl RowScratchpad {
    /// A scratchpad holding at most `budget_bytes / row_bytes` rows
    /// (zero budget disables caching entirely).
    pub fn new(budget_bytes: u64, row_bytes: u64) -> RowScratchpad {
        let capacity_rows = (budget_bytes / row_bytes.max(1)) as usize;
        RowScratchpad {
            capacity_rows,
            inner: Mutex::new(ScratchInner {
                order: LruSet::new(capacity_rows),
                rows: HashMap::new(),
            }),
        }
    }

    /// Row capacity.
    pub fn capacity_rows(&self) -> usize {
        self.capacity_rows
    }

    /// Resident rows.
    pub fn len(&self) -> usize {
        self.inner.safe_lock().rows.len()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The resident row of `node`, promoting it to most-recently-used.
    pub fn get(&self, node: NodeId) -> Option<Arc<[f32]>> {
        let mut inner = self.inner.safe_lock();
        if !inner.order.touch(&node.raw()) {
            return None;
        }
        inner.rows.get(&node.raw()).cloned()
    }

    /// Inserts (or refreshes) `node`'s row, evicting the LRU row if the
    /// budget is exhausted. A zero-capacity scratchpad stays empty.
    pub fn insert(&self, node: NodeId, row: Arc<[f32]>) {
        if self.capacity_rows == 0 {
            return;
        }
        let mut inner = self.inner.safe_lock();
        if let Some(evicted) = inner.order.insert(node.raw()) {
            inner.rows.remove(&evicted);
        }
        inner.rows.insert(node.raw(), row);
    }
}

/// Tuning knobs for the ISP gather tier (on top of the file geometry,
/// which comes from the wrapped store's [`FileStoreOptions`]).
#[derive(Debug, Clone, PartialEq)]
pub struct IspGatherOptions {
    /// Flash page requests the in-device gather unit keeps in flight
    /// simultaneously — the channel parallelism the ISP taps (paper
    /// Fig 11, steps 3–4).
    pub queue_depth: usize,
    /// Device model parameters. The flash page size, FTL logical space,
    /// and page-buffer capacity are overridden at open time to match
    /// the feature file's geometry; everything else (channel counts,
    /// latencies, PCIe link) is taken as configured.
    pub ssd: SsdParams,
    /// Embedded-core work to locate and pack one feature row out of the
    /// page buffer.
    pub pack_cost_per_row: SimDuration,
}

impl Default for IspGatherOptions {
    /// 16 in-flight pages (one per flash channel of the default
    /// geometry), OpenSSD-class device parameters, 120 ns per packed
    /// row.
    fn default() -> Self {
        IspGatherOptions {
            queue_depth: 16,
            ssd: SsdParams::default(),
            pack_cost_per_row: SimDuration::from_nanos(120),
        }
    }
}

/// A [`FeatureStore`] whose gathers execute device-side against an SSD
/// timing model, shipping only packed feature rows to the host.
///
/// Construct one over a registry-shared [`SharedFileStore`] with
/// [`IspGatherStore::over`] (the pipeline's path — concurrent runs then
/// share one open file and one payload cache), or open a private one
/// straight from a feature file with [`IspGatherStore::open`] /
/// [`IspGatherStore::open_with`].
#[derive(Debug)]
pub struct IspGatherStore {
    shared: Arc<SharedFileStore>,
    scratchpad: Arc<RowScratchpad>,
    ssd: Ssd,
    queue_depth: usize,
    pack_cost_per_row: SimDuration,
    /// Virtual device clock: each gather starts where the previous one
    /// finished, so shared-resource contention (cores, channels, PCIe)
    /// accumulates across a run exactly like in the edge-list policies.
    clock: SimTime,
    device_time: SimDuration,
    stats: StoreStats,
}

impl IspGatherStore {
    /// Wraps an already-open shared store in the ISP gather tier,
    /// joining the host row scratchpad every ISP run of that store
    /// shares ([`SharedFileStore::isp_scratchpad`]).
    pub fn over(shared: Arc<SharedFileStore>, opts: IspGatherOptions) -> IspGatherStore {
        assert!(opts.queue_depth > 0, "queue depth must be positive");
        let file_opts = shared.options();
        let mut params = opts.ssd;
        // Align the device model to the file geometry: flash pages are
        // the store's I/O pages, the FTL covers the whole file, and the
        // device page buffer matches the payload cache capacity.
        params.flash.page_bytes = file_opts.page_bytes;
        params.ftl.logical_pages = params
            .ftl
            .logical_pages
            .max(shared.file_len().div_ceil(file_opts.page_bytes).max(1));
        params.buffer_pages = file_opts.cache_pages;
        IspGatherStore {
            scratchpad: shared.isp_scratchpad(),
            shared,
            ssd: Ssd::new(params),
            queue_depth: opts.queue_depth,
            pack_cost_per_row: opts.pack_cost_per_row,
            clock: SimTime::ZERO,
            device_time: SimDuration::ZERO,
            stats: StoreStats::default(),
        }
    }

    /// Opens `path` privately with default file geometry and device
    /// parameters.
    pub fn open(path: &Path) -> Result<IspGatherStore, StoreError> {
        IspGatherStore::open_with(
            path,
            FileStoreOptions::default(),
            IspGatherOptions::default(),
        )
    }

    /// Opens `path` privately (its own file handle and single-shard
    /// payload cache) through the usual magic/header/length validation.
    pub fn open_with(
        path: &Path,
        file_opts: FileStoreOptions,
        opts: IspGatherOptions,
    ) -> Result<IspGatherStore, StoreError> {
        let shared = Arc::new(SharedFileStore::open_with(path, file_opts, 1)?);
        Ok(IspGatherStore::over(shared, opts))
    }

    /// The shared store serving this tier's media reads.
    pub fn shared(&self) -> &Arc<SharedFileStore> {
        &self.shared
    }

    /// The host row scratchpad this run shares with every other ISP
    /// run over the same feature file.
    pub fn scratchpad(&self) -> &Arc<RowScratchpad> {
        &self.scratchpad
    }

    /// The file this store reads from.
    pub fn path(&self) -> &Path {
        self.shared.path()
    }

    /// Total modeled device-side time across all gathers so far.
    /// Survives [`FeatureStore::reset_stats`] along with the device
    /// state itself (resetting counters must not rewind the clock).
    pub fn device_time(&self) -> SimDuration {
        self.device_time
    }

    /// The composed device model (for inspecting component counters —
    /// flash pages read, buffer hit ratio, PCIe bytes moved).
    pub fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    /// Costs one gather against the device model; see [`cost_isp_pass`].
    fn cost_gather(&mut self, pages: &[u64], rows: u64, payload_bytes: u64) -> SimDuration {
        cost_isp_pass(
            &mut self.ssd,
            &mut self.clock,
            self.queue_depth,
            self.pack_cost_per_row,
            pages,
            rows,
            payload_bytes,
        )
    }
}

/// Costs one ISP pass against a device model: command decode on the
/// embedded cores, FTL translation + flash read (or page-buffer hit)
/// per planned page with at most `queue_depth` reads in flight, per-row
/// pack work on the cores, and the packed-result DMA. Advances `clock`
/// (each pass starts where the previous one finished, so
/// shared-resource contention accumulates across a run) and returns the
/// modeled busy time. Shared by the ISP feature-gather tier and the
/// ISP sampling topology ([`crate::IspSampleTopology`]).
pub(crate) fn cost_isp_pass(
    ssd: &mut Ssd,
    clock: &mut SimTime,
    queue_depth: usize,
    pack_cost_per_row: SimDuration,
    pages: &[u64],
    rows: u64,
    payload_bytes: u64,
) -> SimDuration {
    let start = *clock;
    // Firmware picks the command off the queue and decodes its
    // descriptor.
    let (_, mut t) = ssd.cores.exec_raw(start, ssd.nvme.isp_command_cost);
    // Page fetches: the in-device unit keeps up to `queue_depth` flash
    // requests outstanding; a new issue waits for the oldest in-flight
    // one once the window is full.
    let mut inflight: VecDeque<SimTime> = VecDeque::with_capacity(queue_depth);
    let mut ready = t;
    for &lpn in pages {
        let issue = if inflight.len() >= queue_depth {
            inflight.pop_front().expect("window is full").max(t)
        } else {
            t
        };
        let (_, translated) = ssd.cores.exec_raw(issue, ssd.ftl.translate_cost());
        let ppn = ssd.ftl.translate(lpn);
        let hit = ssd.buffer.access(ppn);
        if !hit {
            ssd.buffer.insert(ppn);
        }
        let done = if hit {
            // Served from SSD DRAM: a short controller-side touch,
            // same as the baseline block path's buffer hits.
            translated + SimDuration::from_nanos(500)
        } else {
            ssd.flash.read_page(translated, ppn)
        };
        ready = ready.max(done);
        inflight.push_back(done);
        t = t.max(issue);
    }
    // Gather/pack next to the page buffer, then one dense DMA of the
    // packed payload back to the host.
    let (_, packed) = ssd.cores.exec_raw(ready, pack_cost_per_row.mul_u64(rows));
    let done = ssd.dma_to_host(packed, payload_bytes);
    *clock = done;
    done.elapsed_since(start)
}

impl FeatureStore for IspGatherStore {
    fn dim(&self) -> usize {
        self.shared.dim()
    }

    fn num_classes(&self) -> usize {
        self.shared.num_classes()
    }

    fn num_nodes(&self) -> usize {
        self.shared.num_nodes()
    }

    fn label(&self, node: NodeId) -> usize {
        self.shared.label(node)
    }

    fn gather_into(&mut self, nodes: &[NodeId], out: &mut [f32]) -> Result<(), StoreError> {
        let dim = self.shared.dim();
        if out.len() != nodes.len() * dim {
            return Err(StoreError::BadBuffer {
                expected: nodes.len() * dim,
                actual: out.len(),
            });
        }
        // Validate every node before touching any state (including the
        // scratchpad's recency order), so a failed gather costs — and
        // counts — nothing.
        let num_nodes = self.shared.num_nodes();
        for &node in nodes {
            if node.index() >= num_nodes {
                return Err(StoreError::NodeOutOfRange { node, num_nodes });
            }
        }
        // Partition: scratchpad-resident rows are served from host DRAM
        // (they crossed PCIe on an earlier gather); the rest — first
        // occurrence of each missing node — go to the device.
        let mut missing: Vec<NodeId> = Vec::new();
        let mut miss_index: HashMap<u32, usize> = HashMap::new();
        let mut resolved: Vec<Option<Arc<[f32]>>> = Vec::with_capacity(nodes.len());
        for &node in nodes {
            if miss_index.contains_key(&node.raw()) {
                resolved.push(None);
                continue;
            }
            match self.scratchpad.get(node) {
                Some(row) => resolved.push(Some(row)),
                None => {
                    miss_index.insert(node.raw(), missing.len());
                    missing.push(node);
                    resolved.push(None);
                }
            }
        }
        let mut io = StoreStats::default();
        let mut miss_buf = vec![0.0f32; missing.len() * dim];
        if !missing.is_empty() {
            // Device-side resolution through the shared store: real
            // media I/O, bit-identical values. Its per-call deltas are
            // the device reads of this gather.
            io = self.shared.gather_into(&missing, &mut miss_buf)?;
            // The missing rows' distinct pages (the same plan the
            // shared store just resolved) drive the timing model's
            // FTL/flash/buffer sequence.
            let plan = self.shared.plan_pages(&missing)?;
            let shipped = missing.len() as u64 * dim as u64 * 4;
            let busy = self.cost_gather(&plan, missing.len() as u64, shipped);
            self.device_time += busy;
            io.device_ns = busy.as_nanos();
            // Publish the freshly shipped rows to the scratchpad.
            for (j, &node) in missing.iter().enumerate() {
                let row: Arc<[f32]> = miss_buf[j * dim..(j + 1) * dim].into();
                self.scratchpad.insert(node, row);
            }
            // Re-scope the transfer split: the shared store accounted
            // its page reads as host traffic (it is a host-path store);
            // here they happened inside the device, and only the packed
            // missing rows crossed the link.
            io.device_bytes_read = io.bytes_read;
            io.host_bytes_transferred = shipped;
        }
        // Assemble the caller's buffer: resident rows from the
        // scratchpad, missing rows from the device gather.
        for (i, &node) in nodes.iter().enumerate() {
            let out_row = &mut out[i * dim..(i + 1) * dim];
            match &resolved[i] {
                Some(row) => out_row.copy_from_slice(row),
                None => {
                    let j = miss_index[&node.raw()];
                    out_row.copy_from_slice(&miss_buf[j * dim..(j + 1) * dim]);
                }
            }
        }
        // Access counters describe the whole gather, not just the
        // device's share of it.
        io.gathers = 1;
        io.nodes_gathered = nodes.len() as u64;
        io.feature_bytes = nodes.len() as u64 * dim as u64 * 4;
        self.stats.accumulate(&io);
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = StoreStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{write_feature_file, FileStore, InMemoryStore, ScratchFile};
    use smartsage_graph::FeatureTable;

    fn write_table(tag: &str, dim: usize, nodes: usize) -> (ScratchFile, FeatureTable) {
        let table = FeatureTable::new(dim, 3, 0x15B);
        let path = ScratchFile::new(tag);
        write_feature_file(path.path(), &table, nodes).unwrap();
        (path, table)
    }

    #[test]
    fn isp_gathers_match_memory_bit_for_bit() {
        let (path, table) = write_table("isp-equiv", 7, 40);
        let mut isp = IspGatherStore::open(path.path()).unwrap();
        let nodes: Vec<NodeId> = [3u32, 0, 39, 3, 17].map(NodeId::new).to_vec();
        let got = isp.gather(&nodes).unwrap();
        let want = InMemoryStore::new(table, 40).gather(&nodes).unwrap();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got), bits(&want));
        assert_eq!(isp.num_nodes(), 40);
        assert_eq!(isp.num_classes(), 3);
        assert_eq!(isp.label(NodeId::new(5)), 5 % 3);
    }

    #[test]
    fn only_packed_rows_cross_the_host_link() {
        // 8-dim rows are 32 bytes, 128 rows per 4 KiB page. A scattered
        // gather (one row per page) costs the device a whole page per
        // row, but the host sees only the packed payload.
        let (path, _) = write_table("isp-host", 8, 1024);
        let mut isp = IspGatherStore::open(path.path()).unwrap();
        let nodes: Vec<NodeId> = (0..8u32).map(|i| NodeId::new(i * 128)).collect();
        isp.gather(&nodes).unwrap();
        let s = isp.stats();
        assert_eq!(s.host_bytes_transferred, 8 * 8 * 4);
        assert_eq!(s.device_bytes_read, s.bytes_read);
        assert!(s.device_bytes_read > 0);
        assert!(
            s.host_bytes_transferred < s.device_bytes_read,
            "packed payload {} must undercut page reads {}",
            s.host_bytes_transferred,
            s.device_bytes_read
        );
        assert!(s.transfer_reduction() > 1.0);
        // The device's own accounting agrees with the host split.
        assert_eq!(isp.ssd().bytes_to_host(), s.host_bytes_transferred);
    }

    #[test]
    fn host_bytes_stay_strictly_below_the_file_store_host_path() {
        let (path, _) = write_table("isp-vs-file", 8, 1024);
        let mut isp = IspGatherStore::open(path.path()).unwrap();
        let mut file = FileStore::open(path.path()).unwrap();
        let nodes: Vec<NodeId> = (0..8u32).map(|i| NodeId::new(i * 128)).collect();
        isp.gather(&nodes).unwrap();
        file.gather(&nodes).unwrap();
        assert!(
            isp.stats().host_bytes_transferred < file.stats().host_bytes_transferred,
            "isp host {} must be below file host {}",
            isp.stats().host_bytes_transferred,
            file.stats().host_bytes_transferred
        );
        // The two tiers read the same pages device-side.
        assert_eq!(
            isp.stats().device_bytes_read,
            file.stats().device_bytes_read
        );
    }

    #[test]
    fn device_time_advances_and_buffer_warm_gathers_are_faster() {
        // 64-byte rows, 64 per page. The cold gather reads one row per
        // page (16 flash page reads); the second gather wants each
        // page's *neighbor* row — all scratchpad-missing, so they
        // really go to the device, but every page is now resident in
        // its DRAM buffer: the warm path (FTL + buffer touch, no
        // flash) must be paid, and must be far cheaper than the cold
        // one.
        let (path, _) = write_table("isp-time", 16, 1024);
        let mut isp = IspGatherStore::open(path.path()).unwrap();
        let even: Vec<NodeId> = (0..16u32).map(|i| NodeId::new(i * 64)).collect();
        let odd: Vec<NodeId> = (0..16u32).map(|i| NodeId::new(i * 64 + 1)).collect();
        isp.gather(&even).unwrap();
        let cold = isp.device_time();
        assert!(!cold.is_zero(), "cold gather must cost device time");
        assert_eq!(isp.stats().device_ns, cold.as_nanos());
        isp.gather(&odd).unwrap();
        let warm = isp.device_time() - cold;
        assert!(!warm.is_zero(), "odd rows still cross the device");
        assert!(
            warm.as_nanos_f64() * 2.0 < cold.as_nanos_f64(),
            "page-buffer-warm gather {warm} should be well under cold {cold}"
        );
        // A fully scratchpad-resident gather never reaches the device.
        isp.gather(&even).unwrap();
        assert_eq!(isp.device_time(), cold + warm);
        // Counters reset; the device clock does not rewind.
        isp.reset_stats();
        assert_eq!(isp.stats(), StoreStats::default());
        assert_eq!(isp.device_time(), cold + warm);
    }

    #[test]
    fn queue_depth_widens_flash_parallelism() {
        let (path, _) = write_table("isp-qd", 32, 256);
        let nodes: Vec<NodeId> = (0..256u32).map(NodeId::new).collect();
        let time_at = |qd: usize| {
            let mut isp = IspGatherStore::open_with(
                path.path(),
                FileStoreOptions {
                    cache_pages: 0, // every gather re-reads: pure flash path
                    ..FileStoreOptions::default()
                },
                IspGatherOptions {
                    queue_depth: qd,
                    ..IspGatherOptions::default()
                },
            )
            .unwrap();
            isp.gather(&nodes).unwrap();
            isp.device_time()
        };
        let serial = time_at(1);
        let parallel = time_at(16);
        assert!(
            parallel.as_nanos_f64() * 2.0 < serial.as_nanos_f64(),
            "queue depth 16 ({parallel}) should far outrun depth 1 ({serial})"
        );
    }

    #[test]
    fn failed_gathers_cost_nothing() {
        let (path, _) = write_table("isp-err", 4, 5);
        let mut isp = IspGatherStore::open(path.path()).unwrap();
        assert!(isp.gather(&[NodeId::new(5)]).is_err());
        assert_eq!(isp.stats(), StoreStats::default());
        assert!(isp.device_time().is_zero());
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn zero_queue_depth_is_rejected() {
        let (path, _) = write_table("isp-zeroqd", 4, 5);
        let _ = IspGatherStore::open_with(
            path.path(),
            FileStoreOptions::default(),
            IspGatherOptions {
                queue_depth: 0,
                ..IspGatherOptions::default()
            },
        );
    }
}
