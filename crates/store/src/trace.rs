//! The sample **byte trace**: the exact access stream neighbor-sampling
//! planning drives through a [`TopologyStore`], exported for cost
//! modeling.
//!
//! Planning asks a topology store two batched questions per hop — the
//! frontier's degrees, then the drawn neighbor picks — and that call
//! stream *is* the storage workload of a mini-batch: which edge lists
//! are read, how long each one is, and how many fine-grained 8-byte
//! entries each contributes. [`SampleTrace`] records it per hop and per
//! access; `smartsage-core`'s cost policies replay the trace against
//! per-system device models to turn one real storage execution into the
//! paper's Figs 14–21 numbers.
//!
//! Two producers exist, by design equal on the same plan:
//!
//! * [`TracingTopology`] wraps any store and records the stream exactly
//!   as the storage interface observes it (the export hook);
//! * `smartsage-core` rebuilds the identical trace from a finished
//!   `SamplePlan` (every access and every drawn position is in the
//!   plan), which is what the pipeline uses on the hot path — the walk
//!   planner never touches the store, so the plan is the one uniform
//!   source.
//!
//! The conformance suite asserts the two agree access-for-access.

use crate::error::StoreError;
use crate::topology::TopologyStore;
use crate::StoreStats;
use smartsage_graph::NodeId;

/// One planned edge-list access as the store observed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceAccess {
    /// The node whose neighbor list is read.
    pub node: NodeId,
    /// The node's out-degree (the answer to the degree read).
    pub degree: u64,
    /// Neighbor positions drawn from this access (0 for isolated
    /// nodes, the hop's fan-out otherwise).
    pub picks: usize,
}

/// All accesses of one hop, in frontier order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHop {
    /// Fan-out at this hop.
    pub fanout: usize,
    /// One access per frontier node.
    pub accesses: Vec<TraceAccess>,
}

/// The complete byte trace of one mini-batch's sampling plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleTrace {
    /// Number of mini-batch targets (hop 0's frontier length).
    pub num_targets: usize,
    /// Per-hop access streams, outermost first.
    pub hops: Vec<TraceHop>,
}

impl SampleTrace {
    /// An empty trace (no targets, no hops).
    pub fn empty() -> SampleTrace {
        SampleTrace {
            num_targets: 0,
            hops: Vec::new(),
        }
    }

    /// Total edge-list accesses across hops.
    pub fn num_accesses(&self) -> u64 {
        self.hops.iter().map(|h| h.accesses.len() as u64).sum()
    }

    /// Total sampled neighbor IDs the plan produces (isolated accesses
    /// contribute `fanout` self-loops, exactly as resolution does).
    pub fn num_sampled(&self) -> u64 {
        self.hops
            .iter()
            .map(|h| (h.accesses.len() * h.fanout) as u64)
            .sum()
    }
}

/// A [`TopologyStore`] decorator that records the planning call stream
/// as a [`SampleTrace`] while forwarding every request to the inner
/// store — the trace **export hook**.
///
/// Designed for `plan_sample_on`'s call discipline: one
/// [`degrees_into`](TopologyStore::degrees_into) opens a hop (the
/// frontier and its degrees), and the following
/// [`pick_neighbors_into`](TopologyStore::pick_neighbors_into) closes
/// it (the drawn picks, `fanout` per non-isolated access, attributed in
/// frontier order). Values returned to the caller are the inner
/// store's, untouched.
#[derive(Debug)]
pub struct TracingTopology<'a> {
    inner: &'a mut dyn TopologyStore,
    trace: SampleTrace,
}

impl<'a> TracingTopology<'a> {
    /// Wraps `inner`, recording from the next call on.
    pub fn new(inner: &'a mut dyn TopologyStore) -> TracingTopology<'a> {
        TracingTopology {
            inner,
            trace: SampleTrace::empty(),
        }
    }

    /// Consumes the wrapper and returns the recorded trace.
    pub fn into_trace(self) -> SampleTrace {
        self.trace
    }
}

impl TopologyStore for TracingTopology<'_> {
    fn num_nodes(&self) -> usize {
        self.inner.num_nodes()
    }

    fn num_edges(&self) -> u64 {
        self.inner.num_edges()
    }

    fn degrees_into(&mut self, nodes: &[NodeId], out: &mut [u64]) -> Result<(), StoreError> {
        self.inner.degrees_into(nodes, out)?;
        if self.trace.hops.is_empty() {
            self.trace.num_targets = nodes.len();
        }
        self.trace.hops.push(TraceHop {
            fanout: 0,
            accesses: nodes
                .iter()
                .zip(out.iter())
                .map(|(&node, &degree)| TraceAccess {
                    node,
                    degree,
                    picks: 0,
                })
                .collect(),
        });
        Ok(())
    }

    fn pick_neighbors_into(
        &mut self,
        picks: &[(NodeId, u64)],
        out: &mut [NodeId],
    ) -> Result<(), StoreError> {
        self.inner.pick_neighbors_into(picks, out)?;
        // Close the hop the preceding degree read opened: `fanout`
        // picks per non-isolated access, in frontier order.
        if let Some(hop) = self.trace.hops.last_mut() {
            if hop.fanout == 0 {
                let nonzero = hop.accesses.iter().filter(|a| a.degree > 0).count();
                if let Some(fanout) = picks.len().checked_div(nonzero) {
                    hop.fanout = fanout;
                    for access in hop.accesses.iter_mut() {
                        if access.degree > 0 {
                            access.picks = fanout;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::InMemoryTopology;
    use smartsage_graph::generate::{generate_power_law, PowerLawConfig};

    #[test]
    fn tracer_forwards_values_and_records_hops() {
        let graph = generate_power_law(&PowerLawConfig {
            nodes: 256,
            avg_degree: 6.0,
            seed: 3,
            ..PowerLawConfig::default()
        });
        let mut plain = InMemoryTopology::new(graph.clone());
        let mut inner = InMemoryTopology::new(graph);
        let mut tracer = TracingTopology::new(&mut inner);
        let frontier: Vec<NodeId> = (0..8u32).map(NodeId::new).collect();
        let mut want = vec![0u64; 8];
        let mut got = vec![0u64; 8];
        plain.degrees_into(&frontier, &mut want).unwrap();
        tracer.degrees_into(&frontier, &mut got).unwrap();
        assert_eq!(want, got, "the tracer must not change answers");
        let picks: Vec<(NodeId, u64)> = frontier
            .iter()
            .zip(&got)
            .filter(|(_, &d)| d > 0)
            .flat_map(|(&n, _)| [(n, 0u64), (n, 0u64)])
            .collect();
        let mut neighbors = vec![NodeId::default(); picks.len()];
        tracer.pick_neighbors_into(&picks, &mut neighbors).unwrap();
        let trace = tracer.into_trace();
        assert_eq!(trace.num_targets, 8);
        assert_eq!(trace.hops.len(), 1);
        assert_eq!(trace.hops[0].fanout, 2);
        for access in &trace.hops[0].accesses {
            assert_eq!(access.picks, if access.degree > 0 { 2 } else { 0 });
        }
        assert_eq!(trace.num_sampled(), 16);
    }

    #[test]
    fn empty_picks_batch_leaves_fanout_open() {
        // A hop whose picks batch is empty carries no fan-out evidence;
        // the tracer records 0 rather than guessing.
        let graph = generate_power_law(&PowerLawConfig {
            nodes: 16,
            avg_degree: 2.0,
            seed: 1,
            ..PowerLawConfig::default()
        });
        let mut inner = InMemoryTopology::new(graph);
        let mut tracer = TracingTopology::new(&mut inner);
        let frontier = [NodeId::new(0), NodeId::new(1)];
        let mut degrees = [0u64; 2];
        tracer.degrees_into(&frontier, &mut degrees).unwrap();
        tracer.pick_neighbors_into(&[], &mut []).unwrap();
        let trace = tracer.into_trace();
        assert_eq!(trace.hops[0].fanout, 0);
        assert_eq!(trace.num_sampled(), 0);
    }
}
