//! Mini-batch training loop (functional).
//!
//! This is the "consumer" side of the paper's producer/consumer pipeline
//! (Fig 4), run for real: sample → gather → forward → backward → SGD.
//! The integration tests use it to prove the reproduction trains — loss
//! decreases and accuracy beats chance on community-labeled graphs —
//! independent of which storage backend produced the subgraphs.

use crate::model::{GraphSageModel, ModelDims};
use crate::sampler::{epoch_targets, plan_sample, Fanouts};
use smartsage_graph::{CsrGraph, FeatureTable, NodeId};
use smartsage_sim::Xoshiro256;

/// Training configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Mini-batch size (paper default 1024; tests use small values).
    pub batch_size: usize,
    /// Per-layer sampling fan-outs.
    pub fanouts: Fanouts,
    /// SGD learning rate.
    pub learning_rate: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            batch_size: 1024,
            fanouts: Fanouts::paper_default(),
            learning_rate: 0.05,
        }
    }
}

/// A functional GraphSAGE trainer over one graph + feature table.
#[derive(Debug, Clone)]
pub struct Trainer {
    model: GraphSageModel,
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with a freshly initialized model.
    pub fn new(dims: ModelDims, config: TrainConfig, rng: &mut Xoshiro256) -> Self {
        Trainer {
            model: GraphSageModel::new(dims, rng),
            config,
        }
    }

    /// The current model.
    pub fn model(&self) -> &GraphSageModel {
        &self.model
    }

    /// Runs one training step on `targets`; returns the batch loss.
    pub fn train_step(
        &mut self,
        graph: &CsrGraph,
        features: &FeatureTable,
        targets: &[NodeId],
        rng: &mut Xoshiro256,
    ) -> f32 {
        let plan = plan_sample(graph, targets, &self.config.fanouts, rng);
        let batch = plan.resolve(graph);
        let (x0, x1, x2) = self.model.gather_features(&batch, features);
        let cache = self.model.forward(&batch, x0, x1, x2);
        let labels: Vec<usize> = batch.targets.iter().map(|&t| features.label(t)).collect();
        let (loss, grads) = self.model.loss_and_gradients(&cache, &labels);
        self.model
            .apply_gradients(&grads, self.config.learning_rate);
        loss
    }

    /// Runs one epoch (every node visited once as a target, in permuted
    /// order); returns the mean batch loss.
    pub fn train_epoch(
        &mut self,
        graph: &CsrGraph,
        features: &FeatureTable,
        epoch_seed: u64,
        rng: &mut Xoshiro256,
    ) -> f32 {
        let n = graph.num_nodes();
        let bs = self.config.batch_size.min(n).max(1);
        let steps = n.div_ceil(bs);
        let mut total = 0.0;
        for step in 0..steps {
            let targets = epoch_targets(n, bs, step, epoch_seed);
            total += self.train_step(graph, features, &targets, rng);
        }
        total / steps as f32
    }

    /// Classification accuracy on `targets` (forward only).
    pub fn accuracy(
        &self,
        graph: &CsrGraph,
        features: &FeatureTable,
        targets: &[NodeId],
        rng: &mut Xoshiro256,
    ) -> f64 {
        let plan = plan_sample(graph, targets, &self.config.fanouts, rng);
        let batch = plan.resolve(graph);
        let (x0, x1, x2) = self.model.gather_features(&batch, features);
        let cache = self.model.forward(&batch, x0, x1, x2);
        let preds = GraphSageModel::predictions(&cache);
        let correct = preds
            .iter()
            .zip(&batch.targets)
            .filter(|&(p, t)| *p == features.label(*t))
            .count();
        correct as f64 / targets.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartsage_graph::generate::{generate_power_law, PowerLawConfig};

    fn setup() -> (CsrGraph, FeatureTable) {
        let g = generate_power_law(&PowerLawConfig {
            nodes: 600,
            avg_degree: 10.0,
            communities: 4,
            homophily: 0.9,
            seed: 88,
            ..PowerLawConfig::default()
        });
        let t = FeatureTable::new(12, 4, 7);
        (g, t)
    }

    fn config() -> TrainConfig {
        TrainConfig {
            batch_size: 64,
            fanouts: Fanouts::new(vec![5, 3]),
            learning_rate: 0.3,
        }
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (g, t) = setup();
        let mut rng = Xoshiro256::seed_from_u64(1);
        let dims = ModelDims {
            features: 12,
            hidden1: 16,
            hidden2: 16,
            classes: 4,
        };
        let mut trainer = Trainer::new(dims, config(), &mut rng);
        let first = trainer.train_epoch(&g, &t, 0, &mut rng);
        let mut last = first;
        for e in 1..5 {
            last = trainer.train_epoch(&g, &t, e, &mut rng);
        }
        assert!(
            last < first * 0.6,
            "loss should drop across epochs: {first} -> {last}"
        );
    }

    #[test]
    fn accuracy_beats_chance_after_training() {
        let (g, t) = setup();
        let mut rng = Xoshiro256::seed_from_u64(2);
        let dims = ModelDims {
            features: 12,
            hidden1: 16,
            hidden2: 16,
            classes: 4,
        };
        let mut trainer = Trainer::new(dims, config(), &mut rng);
        for e in 0..6 {
            trainer.train_epoch(&g, &t, e, &mut rng);
        }
        let targets: Vec<NodeId> = (0..200u32).map(NodeId::new).collect();
        let acc = trainer.accuracy(&g, &t, &targets, &mut rng);
        assert!(acc > 0.5, "accuracy {acc} should beat 0.25 chance easily");
    }

    #[test]
    fn single_step_runs_on_tiny_batches() {
        let (g, t) = setup();
        let mut rng = Xoshiro256::seed_from_u64(3);
        let dims = ModelDims {
            features: 12,
            hidden1: 8,
            hidden2: 8,
            classes: 4,
        };
        let mut trainer = Trainer::new(dims, config(), &mut rng);
        let loss = trainer.train_step(&g, &t, &[NodeId::new(0)], &mut rng);
        assert!(loss.is_finite() && loss > 0.0);
    }
}
