//! Mini-batch training loop (functional).
//!
//! This is the "consumer" side of the paper's producer/consumer pipeline
//! (Fig 4), run for real: sample → gather → forward → backward → SGD.
//! The integration tests use it to prove the reproduction trains — loss
//! decreases and accuracy beats chance on community-labeled graphs —
//! independent of which storage tier produced the subgraphs.
//!
//! The gather stage goes through a
//! [`FeatureStore`]: the `*_on` methods
//! accept any store (in-memory, file-backed, the in-storage-processing
//! [`IspGatherStore`](smartsage_store::IspGatherStore), metered),
//! [`Trainer::train_step_shared`] gathers through a thread-shared
//! [`SharedDynStore`] (the hand-off type concurrent training workers
//! use), and the historical [`FeatureTable`]-based methods are thin
//! shims over an [`InMemoryStore`].
//! Because stores resolve gathers to byte-identical values, the loss
//! trajectory of a run is independent of the store backing it — and of
//! how many workers share it — asserted end-to-end in
//! `tests/feature_store_training.rs` and
//! `tests/shared_store_concurrency.rs`.

use crate::model::{GraphSageModel, ModelDims};
use crate::sampler::{epoch_targets, plan_sample, plan_sample_on, Fanouts};
use smartsage_graph::{CsrGraph, FeatureTable, NodeId};
use smartsage_sim::Xoshiro256;
use smartsage_store::{FeatureStore, InMemoryStore, SharedDynStore, StoreError, TopologyStore};

/// Training configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Mini-batch size (paper default 1024; tests use small values).
    pub batch_size: usize,
    /// Per-layer sampling fan-outs.
    pub fanouts: Fanouts,
    /// SGD learning rate.
    pub learning_rate: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            batch_size: 1024,
            fanouts: Fanouts::paper_default(),
            learning_rate: 0.05,
        }
    }
}

/// A functional GraphSAGE trainer over one graph + feature table.
#[derive(Debug, Clone)]
pub struct Trainer {
    model: GraphSageModel,
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer with a freshly initialized model.
    pub fn new(dims: ModelDims, config: TrainConfig, rng: &mut Xoshiro256) -> Self {
        Trainer {
            model: GraphSageModel::new(dims, rng),
            config,
        }
    }

    /// The current model.
    pub fn model(&self) -> &GraphSageModel {
        &self.model
    }

    /// Gathers the per-hop feature matrices of a resolved batch through
    /// `store` — the trainer's gather stage, shared by the training and
    /// evaluation paths.
    pub fn gather(
        &self,
        batch: &crate::sampler::SampledBatch,
        store: &mut dyn FeatureStore,
    ) -> Result<(crate::Matrix, crate::Matrix, crate::Matrix), StoreError> {
        self.model.gather_features_from(batch, store)
    }

    /// Runs one training step on `targets`, gathering features through
    /// `store`; returns the batch loss. Shim over
    /// [`Trainer::train_step_via`] with a zero-copy in-memory topology
    /// view, so sampling through storage shares this exact code path.
    pub fn train_step_on(
        &mut self,
        graph: &CsrGraph,
        store: &mut dyn FeatureStore,
        targets: &[NodeId],
        rng: &mut Xoshiro256,
    ) -> Result<f32, StoreError> {
        self.train_step_via(
            &mut smartsage_store::CsrView::new(graph),
            store,
            targets,
            rng,
        )
    }

    /// Runs one training step on `targets`, sampling neighbors through
    /// `topology` and gathering features through `store` — **both**
    /// halves of the dataset served by stores, so training can run
    /// entirely through real storage I/O. Because topology and feature
    /// stores alike resolve to byte-identical values (the determinism
    /// contract), the loss trajectory is independent of which tiers
    /// back the run; `tests/topology_training.rs` asserts this
    /// end-to-end.
    pub fn train_step_via(
        &mut self,
        topology: &mut dyn TopologyStore,
        store: &mut dyn FeatureStore,
        targets: &[NodeId],
        rng: &mut Xoshiro256,
    ) -> Result<f32, StoreError> {
        let plan = plan_sample_on(topology, targets, &self.config.fanouts, rng)?;
        let batch = plan.resolve_on(topology)?;
        let (x0, x1, x2) = self.gather(&batch, store)?;
        let cache = self.model.forward(&batch, x0, x1, x2);
        let labels: Vec<usize> = batch.targets.iter().map(|&t| store.label(t)).collect();
        let (loss, grads) = self.model.loss_and_gradients(&cache, &labels);
        self.model
            .apply_gradients(&grads, self.config.learning_rate);
        Ok(loss)
    }

    /// Runs one epoch through `store` (every node visited once as a
    /// target, in permuted order); returns the mean batch loss.
    pub fn train_epoch_on(
        &mut self,
        graph: &CsrGraph,
        store: &mut dyn FeatureStore,
        epoch_seed: u64,
        rng: &mut Xoshiro256,
    ) -> Result<f32, StoreError> {
        let n = graph.num_nodes();
        let bs = self.config.batch_size.min(n).max(1);
        let steps = n.div_ceil(bs);
        let mut total = 0.0;
        for step in 0..steps {
            let targets = epoch_targets(n, bs, step, epoch_seed);
            total += self.train_step_on(graph, store, &targets, rng)?;
        }
        Ok(total / steps as f32)
    }

    /// Classification accuracy on `targets` through `store` (forward
    /// only).
    pub fn accuracy_on(
        &self,
        graph: &CsrGraph,
        store: &mut dyn FeatureStore,
        targets: &[NodeId],
        rng: &mut Xoshiro256,
    ) -> Result<f64, StoreError> {
        let plan = plan_sample(graph, targets, &self.config.fanouts, rng);
        let batch = plan.resolve(graph);
        let (x0, x1, x2) = self.gather(&batch, store)?;
        let cache = self.model.forward(&batch, x0, x1, x2);
        let preds = GraphSageModel::predictions(&cache);
        let correct = preds
            .iter()
            .zip(&batch.targets)
            .filter(|&(p, t)| *p == store.label(*t))
            .count();
        Ok(correct as f64 / targets.len().max(1) as f64)
    }

    /// Runs one training step through a thread-shared store
    /// ([`SharedDynStore`]) — the gather path concurrent training
    /// workers use: the store mutex is held only for the gather and the
    /// label lookups of this one step, never across the forward or
    /// backward pass, so N workers sharing one file-backed store
    /// overlap their compute while the shared page cache below them
    /// deduplicates the I/O.
    pub fn train_step_shared(
        &mut self,
        graph: &CsrGraph,
        store: &SharedDynStore,
        targets: &[NodeId],
        rng: &mut Xoshiro256,
    ) -> Result<f32, StoreError> {
        let plan = plan_sample(graph, targets, &self.config.fanouts, rng);
        let batch = plan.resolve(graph);
        let (x0, x1, x2, labels) = {
            let mut store = store.lock().expect("feature store poisoned");
            let (x0, x1, x2) = self.gather(&batch, store.as_mut())?;
            let labels: Vec<usize> = batch.targets.iter().map(|&t| store.label(t)).collect();
            (x0, x1, x2, labels)
        };
        let cache = self.model.forward(&batch, x0, x1, x2);
        let (loss, grads) = self.model.loss_and_gradients(&cache, &labels);
        self.model
            .apply_gradients(&grads, self.config.learning_rate);
        Ok(loss)
    }

    /// Runs one training step on `targets`; returns the batch loss.
    /// Shim over [`Trainer::train_step_on`] with an in-memory store.
    pub fn train_step(
        &mut self,
        graph: &CsrGraph,
        features: &FeatureTable,
        targets: &[NodeId],
        rng: &mut Xoshiro256,
    ) -> f32 {
        let mut store = InMemoryStore::unbounded(features.clone());
        self.train_step_on(graph, &mut store, targets, rng)
            .expect("in-memory gathers cannot fail")
    }

    /// Runs one epoch (every node visited once as a target, in permuted
    /// order); returns the mean batch loss. Shim over
    /// [`Trainer::train_epoch_on`] with an in-memory store.
    pub fn train_epoch(
        &mut self,
        graph: &CsrGraph,
        features: &FeatureTable,
        epoch_seed: u64,
        rng: &mut Xoshiro256,
    ) -> f32 {
        let mut store = InMemoryStore::unbounded(features.clone());
        self.train_epoch_on(graph, &mut store, epoch_seed, rng)
            .expect("in-memory gathers cannot fail")
    }

    /// Classification accuracy on `targets` (forward only). Shim over
    /// [`Trainer::accuracy_on`] with an in-memory store.
    pub fn accuracy(
        &self,
        graph: &CsrGraph,
        features: &FeatureTable,
        targets: &[NodeId],
        rng: &mut Xoshiro256,
    ) -> f64 {
        let mut store = InMemoryStore::unbounded(features.clone());
        self.accuracy_on(graph, &mut store, targets, rng)
            .expect("in-memory gathers cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartsage_graph::generate::{generate_power_law, PowerLawConfig};

    fn setup() -> (CsrGraph, FeatureTable) {
        let g = generate_power_law(&PowerLawConfig {
            nodes: 600,
            avg_degree: 10.0,
            communities: 4,
            homophily: 0.9,
            seed: 88,
            ..PowerLawConfig::default()
        });
        let t = FeatureTable::new(12, 4, 7);
        (g, t)
    }

    fn config() -> TrainConfig {
        TrainConfig {
            batch_size: 64,
            fanouts: Fanouts::new(vec![5, 3]),
            learning_rate: 0.3,
        }
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (g, t) = setup();
        let mut rng = Xoshiro256::seed_from_u64(1);
        let dims = ModelDims {
            features: 12,
            hidden1: 16,
            hidden2: 16,
            classes: 4,
        };
        let mut trainer = Trainer::new(dims, config(), &mut rng);
        let first = trainer.train_epoch(&g, &t, 0, &mut rng);
        let mut last = first;
        for e in 1..5 {
            last = trainer.train_epoch(&g, &t, e, &mut rng);
        }
        assert!(
            last < first * 0.6,
            "loss should drop across epochs: {first} -> {last}"
        );
    }

    #[test]
    fn accuracy_beats_chance_after_training() {
        let (g, t) = setup();
        let mut rng = Xoshiro256::seed_from_u64(2);
        let dims = ModelDims {
            features: 12,
            hidden1: 16,
            hidden2: 16,
            classes: 4,
        };
        let mut trainer = Trainer::new(dims, config(), &mut rng);
        for e in 0..6 {
            trainer.train_epoch(&g, &t, e, &mut rng);
        }
        let targets: Vec<NodeId> = (0..200u32).map(NodeId::new).collect();
        let acc = trainer.accuracy(&g, &t, &targets, &mut rng);
        assert!(acc > 0.5, "accuracy {acc} should beat 0.25 chance easily");
    }

    #[test]
    fn shared_step_is_bit_identical_to_exclusive_step() {
        let (g, t) = setup();
        let dims = ModelDims {
            features: 12,
            hidden1: 8,
            hidden2: 8,
            classes: 4,
        };
        let targets: Vec<NodeId> = (0..32u32).map(NodeId::new).collect();
        let mut rng_a = Xoshiro256::seed_from_u64(9);
        let mut trainer_a = Trainer::new(dims, config(), &mut rng_a);
        let mut store_a = InMemoryStore::unbounded(t.clone());
        let loss_a = trainer_a
            .train_step_on(&g, &mut store_a, &targets, &mut rng_a)
            .unwrap();
        let mut rng_b = Xoshiro256::seed_from_u64(9);
        let mut trainer_b = Trainer::new(dims, config(), &mut rng_b);
        let store_b = smartsage_store::share_store(InMemoryStore::unbounded(t));
        let loss_b = trainer_b
            .train_step_shared(&g, &store_b, &targets, &mut rng_b)
            .unwrap();
        assert_eq!(loss_a.to_bits(), loss_b.to_bits());
        assert_eq!(store_b.lock().unwrap().stats().gathers, 3);
    }

    #[test]
    fn single_step_runs_on_tiny_batches() {
        let (g, t) = setup();
        let mut rng = Xoshiro256::seed_from_u64(3);
        let dims = ModelDims {
            features: 12,
            hidden1: 8,
            hidden2: 8,
            classes: 4,
        };
        let mut trainer = Trainer::new(dims, config(), &mut rng);
        let loss = trainer.train_step(&g, &t, &[NodeId::new(0)], &mut rng);
        assert!(loss.is_finite() && loss > 0.0);
    }
}
