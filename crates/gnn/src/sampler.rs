//! GraphSAGE neighbor sampling (paper §II-B, Algorithm 1).
//!
//! Sampling is split into two phases so that every system's cost
//! policy prices exactly the same random choices:
//!
//! 1. [`plan_sample`] draws, for each edge-list access, the **positions**
//!    of the sampled neighbors within the node's neighbor list, producing
//!    a [`SamplePlan`]. The plan is the ground truth for both the
//!    functional result and the storage access pattern (which blocks of
//!    the edge-list array each system must touch).
//! 2. [`SamplePlan::resolve`] materializes the sampled neighbor IDs (the
//!    subgraph) by reading the graph — on the host systems this models
//!    (simulated) host memory, on the ISP it happens inside the SSD;
//!    both get byte-identical results because they share the plan.
//!
//! The paper's default configuration samples 25 neighbors at the first
//! GNN layer and 10 at the second (§VI-F); mini-batch size is 1024 (§V).
//!
//! Both phases are generic over a
//! [`TopologyStore`]: [`plan_sample_on`]
//! draws the plan reading degrees and frontier neighbors through the
//! store, and [`SamplePlan::resolve_on`] materializes the subgraph the
//! same way — so the graph half of the dataset can live on storage
//! ([`FileTopology`](smartsage_store::FileTopology)) or resolve inside
//! the modeled SSD
//! ([`IspSampleTopology`](smartsage_store::IspSampleTopology)). The
//! historical in-memory entry points ([`plan_sample`],
//! [`SamplePlan::resolve`]) are shims over the same code path through a
//! zero-copy [`CsrView`], so the tiers cannot
//! drift: bit-identical batches are a property of the shared
//! implementation, asserted across tiers by
//! `tests/topology_store_conformance.rs`.

use smartsage_graph::{CsrGraph, NodeId};
use smartsage_sim::Xoshiro256;
use smartsage_store::{CsrView, StoreError, TopologyStore};

/// Per-layer sampling fan-outs, outermost (target) layer first.
///
/// # Example
///
/// ```
/// use smartsage_gnn::Fanouts;
/// let f = Fanouts::paper_default();
/// assert_eq!(f.as_slice(), &[25, 10]);
/// assert_eq!(f.scaled(2.0).as_slice(), &[50, 20]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fanouts(Vec<usize>);

impl Fanouts {
    /// Creates fan-outs from a per-hop list.
    ///
    /// # Panics
    ///
    /// Panics if empty or any fan-out is zero.
    pub fn new(fanouts: Vec<usize>) -> Self {
        assert!(!fanouts.is_empty(), "need at least one hop");
        assert!(fanouts.iter().all(|&f| f > 0), "fan-outs must be positive");
        Fanouts(fanouts)
    }

    /// The paper's default: 25 neighbors at layer 1, 10 at layer 2.
    pub fn paper_default() -> Self {
        Fanouts(vec![25, 10])
    }

    /// The per-hop fan-outs.
    pub fn as_slice(&self) -> &[usize] {
        &self.0
    }

    /// Number of hops.
    pub fn hops(&self) -> usize {
        self.0.len()
    }

    /// Fan-outs scaled by `factor` (minimum 1 each) — Fig 21's sweep.
    pub fn scaled(&self, factor: f64) -> Fanouts {
        Fanouts(
            self.0
                .iter()
                .map(|&f| ((f as f64 * factor).round() as usize).max(1))
                .collect(),
        )
    }

    /// Total sampled nodes per target (s1 + s1*s2 + ...).
    pub fn sampled_per_target(&self) -> u64 {
        let mut total = 0u64;
        let mut layer = 1u64;
        for &f in &self.0 {
            layer *= f as u64;
            total += layer;
        }
        total
    }
}

/// One edge-list access: the node whose neighbor list is read and the
/// sampled positions within it. Empty positions mean the node had no
/// neighbors (the resolver substitutes self-loops).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeListAccess {
    /// The node whose edge list is read.
    pub node: NodeId,
    /// Sampled indices into the node's neighbor list (with replacement).
    pub positions: Vec<u64>,
}

/// All edge-list accesses of one hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopPlan {
    /// Fan-out at this hop.
    pub fanout: usize,
    /// One access per parent node (in parent order).
    pub accesses: Vec<EdgeListAccess>,
}

/// The complete sampling plan for one mini-batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplePlan {
    /// The mini-batch target nodes.
    pub targets: Vec<NodeId>,
    /// Hop plans, outermost first.
    pub hops: Vec<HopPlan>,
}

impl SamplePlan {
    /// Total number of edge-list accesses across hops.
    pub fn num_accesses(&self) -> u64 {
        self.hops.iter().map(|h| h.accesses.len() as u64).sum()
    }

    /// Total number of sampled neighbor IDs.
    pub fn num_sampled(&self) -> u64 {
        self.hops
            .iter()
            .map(|h| (h.accesses.len() * h.fanout) as u64)
            .sum()
    }

    /// Materializes sampled neighbor IDs from the in-memory graph — a
    /// shim over [`SamplePlan::resolve_on`] through a zero-copy
    /// [`CsrView`], so the in-memory and storage tiers share one code
    /// path.
    ///
    /// Positions index into each node's neighbor list; nodes without
    /// neighbors contribute self-loops. The result is deterministic given
    /// the plan.
    pub fn resolve(&self, graph: &CsrGraph) -> SampledBatch {
        self.resolve_on(&mut CsrView::new(graph))
            .expect("in-memory topology cannot fail")
    }

    /// Materializes sampled neighbor IDs through a [`TopologyStore`]:
    /// each hop's picks are resolved as **one coalesced batch** (the
    /// file tier merges their pages into contiguous runs, the ISP tier
    /// issues one device command per hop), and the resulting batch is
    /// bit-identical to [`SamplePlan::resolve`] on the in-memory CSR by
    /// the store determinism contract.
    pub fn resolve_on(&self, topology: &mut dyn TopologyStore) -> Result<SampledBatch, StoreError> {
        let mut hops = Vec::with_capacity(self.hops.len());
        for hop in &self.hops {
            let mut parents = Vec::with_capacity(hop.accesses.len());
            // Plan the hop's picks, then resolve them in one batch.
            let mut picks: Vec<(NodeId, u64)> = Vec::with_capacity(hop.accesses.len() * hop.fanout);
            for access in &hop.accesses {
                parents.push(access.node);
                if !access.positions.is_empty() {
                    debug_assert_eq!(access.positions.len(), hop.fanout);
                    picks.extend(access.positions.iter().map(|&pos| (access.node, pos)));
                }
            }
            let mut resolved = vec![NodeId::default(); picks.len()];
            topology.pick_neighbors_into(&picks, &mut resolved)?;
            // Reassemble in access order, substituting self-loops for
            // isolated nodes.
            let mut neighbors = Vec::with_capacity(hop.accesses.len() * hop.fanout);
            let mut next = resolved.iter();
            for access in &hop.accesses {
                if access.positions.is_empty() {
                    // Isolated node: self-loops keep the tree shape.
                    neighbors.extend(std::iter::repeat_n(access.node, hop.fanout));
                } else {
                    for _ in &access.positions {
                        neighbors.push(*next.next().expect("one answer per pick"));
                    }
                }
            }
            hops.push(HopSample {
                fanout: hop.fanout,
                parents,
                neighbors,
            });
        }
        Ok(SampledBatch {
            targets: self.targets.clone(),
            hops,
        })
    }
}

/// One resolved hop: each parent's `fanout` sampled neighbors,
/// flattened in parent order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopSample {
    /// Fan-out at this hop.
    pub fanout: usize,
    /// Parent nodes (hop k-1's neighbor list, or the targets for hop 0).
    pub parents: Vec<NodeId>,
    /// Sampled neighbors; `parents.len() * fanout` entries.
    pub neighbors: Vec<NodeId>,
}

/// A resolved mini-batch subgraph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampledBatch {
    /// The target nodes.
    pub targets: Vec<NodeId>,
    /// Resolved hops, outermost first.
    pub hops: Vec<HopSample>,
}

impl SampledBatch {
    /// All distinct nodes in the subgraph (targets + sampled), sorted.
    pub fn all_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.targets.clone();
        for hop in &self.hops {
            nodes.extend_from_slice(&hop.neighbors);
        }
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Total sampled-ID count (the payload the ISP ships back).
    pub fn num_sampled(&self) -> u64 {
        self.hops.iter().map(|h| h.neighbors.len() as u64).sum()
    }

    /// Size in bytes of the dense sampled-ID list (8 B per entry,
    /// matching the edge-list entry width).
    pub fn subgraph_bytes(&self) -> u64 {
        self.num_sampled() * smartsage_graph::csr::NEIGHBOR_ENTRY_BYTES
    }
}

/// Draws the sampling plan for one mini-batch (paper Algorithm 1,
/// applied per hop) from the in-memory graph — a shim over
/// [`plan_sample_on`] through a zero-copy [`CsrView`].
///
/// Hop 0 reads each target's edge list and samples `fanouts[0]` positions
/// with replacement; hop `k` does the same for every neighbor sampled at
/// hop `k-1`.
pub fn plan_sample(
    graph: &CsrGraph,
    targets: &[NodeId],
    fanouts: &Fanouts,
    rng: &mut Xoshiro256,
) -> SamplePlan {
    plan_sample_on(&mut CsrView::new(graph), targets, fanouts, rng)
        .expect("in-memory topology cannot fail")
}

/// Draws the sampling plan for one mini-batch through a
/// [`TopologyStore`].
///
/// Per hop, the frontier's degrees are read as **one coalesced batch**
/// (position draws need them), positions are drawn per node in frontier
/// order — the RNG consumption order is exactly [`plan_sample`]'s, so
/// plans are bit-identical across tiers for the same seed — and the
/// next frontier's neighbor picks resolve as a second coalesced batch.
pub fn plan_sample_on(
    topology: &mut dyn TopologyStore,
    targets: &[NodeId],
    fanouts: &Fanouts,
    rng: &mut Xoshiro256,
) -> Result<SamplePlan, StoreError> {
    let mut hops = Vec::with_capacity(fanouts.hops());
    let mut frontier: Vec<NodeId> = targets.to_vec();
    for &fanout in fanouts.as_slice() {
        let mut degrees = vec![0u64; frontier.len()];
        topology.degrees_into(&frontier, &mut degrees)?;
        let mut accesses = Vec::with_capacity(frontier.len());
        let mut picks: Vec<(NodeId, u64)> = Vec::with_capacity(frontier.len() * fanout);
        for (&node, &degree) in frontier.iter().zip(&degrees) {
            let positions: Vec<u64> = if degree == 0 {
                Vec::new()
            } else {
                (0..fanout).map(|_| rng.range_u64(degree)).collect()
            };
            picks.extend(positions.iter().map(|&p| (node, p)));
            accesses.push(EdgeListAccess { node, positions });
        }
        let mut resolved = vec![NodeId::default(); picks.len()];
        topology.pick_neighbors_into(&picks, &mut resolved)?;
        let mut next_frontier = Vec::with_capacity(frontier.len() * fanout);
        let mut next = resolved.iter();
        for access in &accesses {
            if access.positions.is_empty() {
                next_frontier.extend(std::iter::repeat_n(access.node, fanout));
            } else {
                for _ in &access.positions {
                    next_frontier.push(*next.next().expect("one answer per pick"));
                }
            }
        }
        hops.push(HopPlan { fanout, accesses });
        frontier = next_frontier;
    }
    Ok(SamplePlan {
        targets: targets.to_vec(),
        hops,
    })
}

/// One independent sampling request inside a merged, coalesced pass —
/// the unit `smartsage-serve`'s batcher hands to [`sample_many_on`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleSpec {
    /// The request's mini-batch target nodes.
    pub targets: Vec<NodeId>,
    /// Seed of the request's private position RNG.
    pub seed: u64,
}

/// Samples many independent requests through a [`TopologyStore`] in
/// **one coalesced pass per hop**: all requests' frontiers merge into a
/// single `degrees_into` batch and a single `pick_neighbors_into`
/// batch, so overlapping neighborhoods share page fetches, cache hits,
/// and ISP passes.
///
/// Each request draws its neighbor positions from its own
/// [`Xoshiro256`] seeded with `spec.seed`, consumed in exactly the
/// order [`plan_sample_on`] would consume it — so every returned batch
/// is bit-identical to running that request alone:
///
/// ```text
/// sample_many_on(t, specs, f)[i]
///     == plan_sample_on(t, &specs[i].targets, f,
///                       &mut Xoshiro256::seed_from_u64(specs[i].seed))?
///            .resolve_on(t)?
/// ```
///
/// Only the store's I/O accounting differs (fewer, larger batched
/// operations); `nodes_gathered`/`feature_bytes` totals are unchanged
/// because merging neither adds nor drops answers.
pub fn sample_many_on(
    topology: &mut dyn TopologyStore,
    specs: &[SampleSpec],
    fanouts: &Fanouts,
) -> Result<Vec<SampledBatch>, StoreError> {
    let mut rngs: Vec<Xoshiro256> = specs
        .iter()
        .map(|s| Xoshiro256::seed_from_u64(s.seed))
        .collect();
    let mut frontiers: Vec<Vec<NodeId>> = specs.iter().map(|s| s.targets.clone()).collect();
    let mut hops: Vec<Vec<HopSample>> = specs.iter().map(|_| Vec::new()).collect();
    for &fanout in fanouts.as_slice() {
        // One merged degree read across every request's frontier.
        let merged: Vec<NodeId> = frontiers.iter().flatten().copied().collect();
        let mut degrees = vec![0u64; merged.len()];
        topology.degrees_into(&merged, &mut degrees)?;
        // Per request (in request order), draw positions from its own
        // RNG — the consumption order within a request is exactly
        // `plan_sample_on`'s, so merging cannot change any request's
        // sample.
        let mut picks: Vec<(NodeId, u64)> = Vec::with_capacity(merged.len() * fanout);
        let mut accesses: Vec<Vec<EdgeListAccess>> = Vec::with_capacity(specs.len());
        let mut offset = 0;
        for (frontier, rng) in frontiers.iter().zip(&mut rngs) {
            let mut request_accesses = Vec::with_capacity(frontier.len());
            for (&node, &degree) in frontier
                .iter()
                .zip(&degrees[offset..offset + frontier.len()])
            {
                let positions: Vec<u64> = if degree == 0 {
                    Vec::new()
                } else {
                    (0..fanout).map(|_| rng.range_u64(degree)).collect()
                };
                picks.extend(positions.iter().map(|&p| (node, p)));
                request_accesses.push(EdgeListAccess { node, positions });
            }
            offset += frontier.len();
            accesses.push(request_accesses);
        }
        // One merged pick resolution, then split back per request,
        // substituting self-loops for isolated nodes.
        let mut resolved = vec![NodeId::default(); picks.len()];
        topology.pick_neighbors_into(&picks, &mut resolved)?;
        let mut next = resolved.iter();
        for ((request_accesses, frontier), request_hops) in
            accesses.iter().zip(&mut frontiers).zip(&mut hops)
        {
            let mut neighbors = Vec::with_capacity(request_accesses.len() * fanout);
            for access in request_accesses {
                if access.positions.is_empty() {
                    neighbors.extend(std::iter::repeat_n(access.node, fanout));
                } else {
                    for _ in &access.positions {
                        neighbors.push(*next.next().expect("one answer per pick"));
                    }
                }
            }
            request_hops.push(HopSample {
                fanout,
                parents: std::mem::take(frontier),
                neighbors: neighbors.clone(),
            });
            *frontier = neighbors;
        }
    }
    Ok(specs
        .iter()
        .zip(hops)
        .map(|(spec, hops)| SampledBatch {
            targets: spec.targets.clone(),
            hops,
        })
        .collect())
}

/// Concatenates independent [`SampledBatch`]es (same hop structure)
/// into one batch whose forward pass computes every request at once.
///
/// Because every [`Matrix`](crate::tensor::Matrix) operation in the
/// model is row-local and `group_mean` groups consecutive fixed-size
/// runs, request boundaries always align with group boundaries — so
/// the merged logits split back into per-request logits that are
/// bit-identical to running each request alone (asserted by
/// `smartsage-serve`'s coalescing tests).
///
/// # Panics
///
/// Panics if the batches' hop counts or fan-outs differ (the caller
/// groups requests by fan-out before merging).
pub fn merge_batches(batches: &[SampledBatch]) -> SampledBatch {
    assert!(!batches.is_empty(), "nothing to merge");
    let fanouts: Vec<usize> = batches[0].hops.iter().map(|h| h.fanout).collect();
    for b in batches {
        let got: Vec<usize> = b.hops.iter().map(|h| h.fanout).collect();
        assert_eq!(got, fanouts, "merge requires identical fan-outs");
    }
    let mut merged = SampledBatch {
        targets: Vec::new(),
        hops: fanouts
            .iter()
            .map(|&fanout| HopSample {
                fanout,
                parents: Vec::new(),
                neighbors: Vec::new(),
            })
            .collect(),
    };
    for b in batches {
        merged.targets.extend_from_slice(&b.targets);
        for (into, hop) in merged.hops.iter_mut().zip(&b.hops) {
            into.parents.extend_from_slice(&hop.parents);
            into.neighbors.extend_from_slice(&hop.neighbors);
        }
    }
    merged
}

/// Draws `batch_size` target nodes for step `step` of an epoch-long
/// deterministic permutation (sampling without replacement across the
/// epoch, as ML dataloaders do).
pub fn epoch_targets(
    num_nodes: usize,
    batch_size: usize,
    step: usize,
    epoch_seed: u64,
) -> Vec<NodeId> {
    let mut rng = Xoshiro256::seed_from_u64(epoch_seed);
    // A cheap full permutation would cost O(n) per call; instead use a
    // random affine bijection over [0, n): x -> (a*x + b) mod n with
    // gcd(a, n) = 1, which visits every node exactly once per epoch.
    let n = num_nodes as u64;
    let mut a = rng.range(1, n.max(2));
    while gcd(a, n) != 1 {
        a = rng.range(1, n.max(2));
    }
    let b = rng.range_u64(n.max(1));
    let start = (step * batch_size) as u64;
    (0..batch_size as u64)
        .map(|i| {
            let x = (start + i) % n;
            let y = (a.wrapping_mul(x) + b) % n;
            NodeId::new(y as u32)
        })
        .collect()
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartsage_graph::generate::{generate_power_law, PowerLawConfig};
    use smartsage_graph::traversal::k_hop_neighborhood;

    fn graph() -> CsrGraph {
        generate_power_law(&PowerLawConfig {
            nodes: 500,
            avg_degree: 8.0,
            seed: 77,
            ..PowerLawConfig::default()
        })
    }

    #[test]
    fn fanout_arithmetic() {
        let f = Fanouts::paper_default();
        assert_eq!(f.hops(), 2);
        assert_eq!(f.sampled_per_target(), 25 + 25 * 10);
        assert_eq!(f.scaled(0.5).as_slice(), &[13, 5]);
        assert_eq!(Fanouts::new(vec![3]).sampled_per_target(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_fanout_panics() {
        Fanouts::new(vec![5, 0]);
    }

    #[test]
    fn plan_counts_match_structure() {
        let g = graph();
        let targets: Vec<NodeId> = (0..16u32).map(NodeId::new).collect();
        let f = Fanouts::new(vec![4, 3]);
        let mut rng = Xoshiro256::seed_from_u64(1);
        let plan = plan_sample(&g, &targets, &f, &mut rng);
        assert_eq!(plan.hops.len(), 2);
        assert_eq!(plan.hops[0].accesses.len(), 16);
        assert_eq!(plan.hops[1].accesses.len(), 16 * 4);
        assert_eq!(plan.num_accesses(), 16 + 64);
        assert_eq!(plan.num_sampled(), 16 * 4 + 64 * 3);
    }

    #[test]
    fn resolve_is_deterministic_and_consistent() {
        let g = graph();
        let targets: Vec<NodeId> = (0..8u32).map(NodeId::new).collect();
        let f = Fanouts::new(vec![5, 2]);
        let mut rng = Xoshiro256::seed_from_u64(9);
        let plan = plan_sample(&g, &targets, &f, &mut rng);
        let a = plan.resolve(&g);
        let b = plan.resolve(&g);
        assert_eq!(a, b);
        // Hop-1 parents are exactly hop-0's flattened neighbors.
        assert_eq!(a.hops[1].parents, a.hops[0].neighbors);
        assert_eq!(a.num_sampled(), plan.num_sampled());
        assert_eq!(a.subgraph_bytes(), plan.num_sampled() * 8);
    }

    #[test]
    fn sampled_nodes_are_real_neighbors() {
        let g = graph();
        let targets: Vec<NodeId> = (0..8u32).map(NodeId::new).collect();
        let f = Fanouts::new(vec![4, 4]);
        let mut rng = Xoshiro256::seed_from_u64(3);
        let batch = plan_sample(&g, &targets, &f, &mut rng).resolve(&g);
        for hop in &batch.hops {
            for (i, &parent) in hop.parents.iter().enumerate() {
                let nbrs = g.neighbors(parent);
                for k in 0..hop.fanout {
                    let sampled = hop.neighbors[i * hop.fanout + k];
                    assert!(
                        nbrs.contains(&sampled) || (nbrs.is_empty() && sampled == parent),
                        "{sampled} is not a neighbor of {parent}"
                    );
                }
            }
        }
    }

    #[test]
    fn subgraph_is_within_k_hops() {
        let g = graph();
        let targets: Vec<NodeId> = (0..4u32).map(NodeId::new).collect();
        let f = Fanouts::new(vec![6, 6]);
        let mut rng = Xoshiro256::seed_from_u64(4);
        let batch = plan_sample(&g, &targets, &f, &mut rng).resolve(&g);
        let hood = k_hop_neighborhood(&g, &targets, 2);
        for n in batch.all_nodes() {
            assert!(hood.contains(&n), "{n} escaped the 2-hop neighborhood");
        }
    }

    #[test]
    fn isolated_nodes_self_loop() {
        let g = CsrGraph::from_edges(3, [(0, 1)]); // node 2 isolated
        let f = Fanouts::new(vec![3]);
        let mut rng = Xoshiro256::seed_from_u64(5);
        let plan = plan_sample(&g, &[NodeId::new(2)], &f, &mut rng);
        assert!(plan.hops[0].accesses[0].positions.is_empty());
        let batch = plan.resolve(&g);
        assert_eq!(batch.hops[0].neighbors, vec![NodeId::new(2); 3]);
    }

    #[test]
    fn epoch_targets_form_a_permutation() {
        let n: usize = 97;
        let bs = 10;
        let mut seen: Vec<u32> = Vec::new();
        for step in 0..n.div_ceil(bs) {
            seen.extend(epoch_targets(n, bs, step, 42).iter().map(|t| t.raw()));
        }
        seen.truncate(n);
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n, "epoch must visit each node once");
    }

    #[test]
    fn sample_many_matches_solo_sampling_bit_for_bit() {
        let g = graph();
        let f = Fanouts::new(vec![4, 3]);
        let specs: Vec<SampleSpec> = (0..5u64)
            .map(|i| SampleSpec {
                targets: (0..6u32).map(|t| NodeId::new(t * 7 + i as u32)).collect(),
                seed: 1000 + i,
            })
            .collect();
        let mut merged_topo = CsrView::new(&g);
        let merged = sample_many_on(&mut merged_topo, &specs, &f).unwrap();
        assert_eq!(merged.len(), specs.len());
        for (spec, batch) in specs.iter().zip(&merged) {
            let mut solo_topo = CsrView::new(&g);
            let mut rng = Xoshiro256::seed_from_u64(spec.seed);
            let solo = plan_sample_on(&mut solo_topo, &spec.targets, &f, &mut rng)
                .unwrap()
                .resolve_on(&mut solo_topo)
                .unwrap();
            assert_eq!(batch, &solo, "merged sampling must not change results");
        }
        // Merging answers the same node count as the plans alone (the
        // plan+resolve serial path re-resolves picks, so it reads
        // strictly more) through only two batched ops per hop.
        let merged_stats = merged_topo.stats();
        let solo_plan_total: u64 = specs
            .iter()
            .map(|spec| {
                let mut topo = CsrView::new(&g);
                let mut rng = Xoshiro256::seed_from_u64(spec.seed);
                plan_sample_on(&mut topo, &spec.targets, &f, &mut rng).unwrap();
                topo.stats().nodes_gathered
            })
            .sum();
        assert_eq!(merged_stats.nodes_gathered, solo_plan_total);
        assert_eq!(merged_stats.gathers, 2 * f.hops() as u64);
    }

    #[test]
    fn sample_many_handles_isolated_nodes_and_empty_spec_lists() {
        let g = CsrGraph::from_edges(3, [(0, 1)]); // node 2 isolated
        let f = Fanouts::new(vec![2]);
        let specs = vec![SampleSpec {
            targets: vec![NodeId::new(2)],
            seed: 3,
        }];
        let out = sample_many_on(&mut CsrView::new(&g), &specs, &f).unwrap();
        assert_eq!(out[0].hops[0].neighbors, vec![NodeId::new(2); 2]);
        assert!(sample_many_on(&mut CsrView::new(&g), &[], &f)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn merge_batches_concatenates_per_hop() {
        let g = graph();
        let f = Fanouts::new(vec![3, 2]);
        let specs: Vec<SampleSpec> = (0..3u64)
            .map(|i| SampleSpec {
                targets: vec![NodeId::new(i as u32), NodeId::new(40 + i as u32)],
                seed: i,
            })
            .collect();
        let batches = sample_many_on(&mut CsrView::new(&g), &specs, &f).unwrap();
        let merged = merge_batches(&batches);
        assert_eq!(merged.targets.len(), 6);
        assert_eq!(merged.hops[0].neighbors.len(), 6 * 3);
        assert_eq!(merged.hops[1].neighbors.len(), 6 * 3 * 2);
        // Request i's rows sit at contiguous offsets in request order.
        assert_eq!(&merged.targets[2..4], &batches[1].targets[..]);
        assert_eq!(
            &merged.hops[1].neighbors[12..24],
            &batches[1].hops[1].neighbors[..]
        );
        // Hop-1 parents are still exactly hop-0's flattened neighbors.
        assert_eq!(merged.hops[1].parents, merged.hops[0].neighbors);
    }

    #[test]
    #[should_panic(expected = "identical fan-outs")]
    fn merge_batches_rejects_mismatched_fanouts() {
        let g = graph();
        let spec = vec![SampleSpec {
            targets: vec![NodeId::new(1)],
            seed: 1,
        }];
        let a = sample_many_on(&mut CsrView::new(&g), &spec, &Fanouts::new(vec![2])).unwrap();
        let b = sample_many_on(&mut CsrView::new(&g), &spec, &Fanouts::new(vec![3])).unwrap();
        merge_batches(&[a[0].clone(), b[0].clone()]);
    }

    #[test]
    fn different_seeds_give_different_plans() {
        let g = graph();
        let targets: Vec<NodeId> = (0..8u32).map(NodeId::new).collect();
        let f = Fanouts::paper_default();
        let p1 = plan_sample(&g, &targets, &f, &mut Xoshiro256::seed_from_u64(1));
        let p2 = plan_sample(&g, &targets, &f, &mut Xoshiro256::seed_from_u64(2));
        assert_ne!(p1, p2);
    }
}
