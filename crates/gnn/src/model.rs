//! Two-layer GraphSAGE with mean aggregation (paper §II, Fig 2 step 4).
//!
//! For a depth-2 sampled tree (targets → s1 neighbors → s2 neighbors),
//! the model computes
//!
//! ```text
//! h1(v)   = ReLU(x(v)·W1s + mean(x(children(v)))·W1n + b1)   for v in {targets} ∪ hop-1
//! h2(t)   = ReLU(h1(t)·W2s + mean(h1(children(t)))·W2n + b2) for targets t
//! logits  = h2·Wo + bo
//! ```
//!
//! Forward and backward are implemented by hand; gradients are validated
//! against numeric differentiation in the tests, and end-to-end training
//! (loss decreasing on homophilous synthetic graphs) is exercised in
//! [`crate::trainer`].

use crate::sampler::SampledBatch;
use crate::tensor::{softmax_cross_entropy, Matrix};
use smartsage_graph::FeatureTable;
use smartsage_sim::Xoshiro256;
use smartsage_store::{FeatureStore, InMemoryStore, StoreError};

/// Model hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelDims {
    /// Input feature dimension.
    pub features: usize,
    /// Hidden width of layer 1.
    pub hidden1: usize,
    /// Hidden width of layer 2.
    pub hidden2: usize,
    /// Number of output classes.
    pub classes: usize,
}

/// Parameter gradients from one backward pass.
#[derive(Debug, Clone)]
pub struct Gradients {
    w1_self: Matrix,
    w1_neigh: Matrix,
    b1: Vec<f32>,
    w2_self: Matrix,
    w2_neigh: Matrix,
    b2: Vec<f32>,
    w_out: Matrix,
    b_out: Vec<f32>,
}

/// The two-layer GraphSAGE model.
#[derive(Debug, Clone)]
pub struct GraphSageModel {
    dims: ModelDims,
    w1_self: Matrix,
    w1_neigh: Matrix,
    b1: Vec<f32>,
    w2_self: Matrix,
    w2_neigh: Matrix,
    b2: Vec<f32>,
    w_out: Matrix,
    b_out: Vec<f32>,
}

/// Everything the backward pass needs from forward.
#[derive(Debug, Clone)]
pub struct ForwardCache {
    m: usize,
    s1: usize,
    s2: usize,
    x0: Matrix,
    x1: Matrix,
    n1_mean: Matrix,
    t_mean: Matrix,
    mask1: Vec<bool>,
    ht: Matrix,
    mask_t: Vec<bool>,
    h1_mean: Matrix,
    h2: Matrix,
    mask2: Vec<bool>,
    /// The logits (also returned separately for convenience).
    pub logits: Matrix,
}

impl GraphSageModel {
    /// Initializes the model with Xavier-style random weights.
    pub fn new(dims: ModelDims, rng: &mut Xoshiro256) -> Self {
        GraphSageModel {
            dims,
            w1_self: Matrix::randn(dims.features, dims.hidden1, rng),
            w1_neigh: Matrix::randn(dims.features, dims.hidden1, rng),
            b1: vec![0.0; dims.hidden1],
            w2_self: Matrix::randn(dims.hidden1, dims.hidden2, rng),
            w2_neigh: Matrix::randn(dims.hidden1, dims.hidden2, rng),
            b2: vec![0.0; dims.hidden2],
            w_out: Matrix::randn(dims.hidden2, dims.classes, rng),
            b_out: vec![0.0; dims.classes],
        }
    }

    /// Model hyperparameters.
    pub fn dims(&self) -> ModelDims {
        self.dims
    }

    /// Gathers the three per-hop feature matrices for `batch`. Shim
    /// over [`GraphSageModel::gather_features_from`] with an in-memory
    /// store.
    ///
    /// # Panics
    ///
    /// Panics if the batch does not have exactly 2 hops or the feature
    /// table dimension disagrees with the model.
    pub fn gather_features(
        &self,
        batch: &SampledBatch,
        table: &FeatureTable,
    ) -> (Matrix, Matrix, Matrix) {
        let mut store = InMemoryStore::unbounded(table.clone());
        self.gather_features_from(batch, &mut store)
            .expect("in-memory gathers cannot fail")
    }

    /// Gathers the three per-hop feature matrices for `batch` through a
    /// [`FeatureStore`] — the storage-backed twin of
    /// [`GraphSageModel::gather_features`]. By the store determinism
    /// contract the matrices are byte-identical across store
    /// implementations; only the I/O counters differ.
    ///
    /// # Panics
    ///
    /// Panics if the batch does not have exactly 2 hops or the store
    /// dimension disagrees with the model.
    pub fn gather_features_from(
        &self,
        batch: &SampledBatch,
        store: &mut dyn FeatureStore,
    ) -> Result<(Matrix, Matrix, Matrix), StoreError> {
        assert_eq!(batch.hops.len(), 2, "model is depth-2");
        assert_eq!(store.dim(), self.dims.features, "feature dim mismatch");
        let f = store.dim();
        let x0 = Matrix::from_vec(batch.targets.len(), f, store.gather(&batch.targets)?);
        let x1 = Matrix::from_vec(
            batch.hops[0].neighbors.len(),
            f,
            store.gather(&batch.hops[0].neighbors)?,
        );
        let x2 = Matrix::from_vec(
            batch.hops[1].neighbors.len(),
            f,
            store.gather(&batch.hops[1].neighbors)?,
        );
        Ok((x0, x1, x2))
    }

    /// Forward pass over a depth-2 batch given its per-hop features.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches between the batch and the matrices.
    pub fn forward(
        &self,
        batch: &SampledBatch,
        x0: Matrix,
        x1: Matrix,
        x2: Matrix,
    ) -> ForwardCache {
        assert_eq!(batch.hops.len(), 2, "model is depth-2");
        let m = batch.targets.len();
        let s1 = batch.hops[0].fanout;
        let s2 = batch.hops[1].fanout;
        assert_eq!(x0.rows(), m);
        assert_eq!(x1.rows(), m * s1);
        assert_eq!(x2.rows(), m * s1 * s2);

        // Layer 1 on hop-1 nodes.
        let n1_mean = x2.group_mean(m * s1, s2);
        let mut h1 = x1
            .matmul(&self.w1_self)
            .add(&n1_mean.matmul(&self.w1_neigh));
        h1.add_bias_inplace(&self.b1);
        let mask1 = h1.relu_inplace();

        // Layer 1 on targets (their neighbors are the hop-1 nodes).
        let t_mean = x1.group_mean(m, s1);
        let mut ht = x0.matmul(&self.w1_self).add(&t_mean.matmul(&self.w1_neigh));
        ht.add_bias_inplace(&self.b1);
        let mask_t = ht.relu_inplace();

        // Layer 2 on targets.
        let h1_mean = h1.group_mean(m, s1);
        let mut h2 = ht
            .matmul(&self.w2_self)
            .add(&h1_mean.matmul(&self.w2_neigh));
        h2.add_bias_inplace(&self.b2);
        let mask2 = h2.relu_inplace();

        // Output projection.
        let mut logits = h2.matmul(&self.w_out);
        logits.add_bias_inplace(&self.b_out);

        ForwardCache {
            m,
            s1,
            s2,
            x0,
            x1,
            n1_mean,
            t_mean,
            mask1,
            ht,
            mask_t,
            h1_mean,
            h2,
            mask2,
            logits,
        }
    }

    /// Computes loss and gradients for `labels` given a forward cache.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from the batch size.
    pub fn loss_and_gradients(&self, cache: &ForwardCache, labels: &[usize]) -> (f32, Gradients) {
        let (loss, dlogits) = softmax_cross_entropy(&cache.logits, labels);

        // Output layer.
        let d_w_out = cache.h2.t_matmul(&dlogits);
        let d_b_out = col_sums(&dlogits);
        let mut d_h2 = dlogits.matmul_t(&self.w_out);
        d_h2.relu_backward_inplace(&cache.mask2);

        // Layer 2.
        let d_w2_self = cache.ht.t_matmul(&d_h2);
        let d_w2_neigh = cache.h1_mean.t_matmul(&d_h2);
        let d_b2 = col_sums(&d_h2);
        let mut d_ht = d_h2.matmul_t(&self.w2_self);
        d_ht.relu_backward_inplace(&cache.mask_t);
        let d_h1_mean = d_h2.matmul_t(&self.w2_neigh);
        let mut d_h1 = Matrix::group_mean_backward(&d_h1_mean, cache.s1);
        d_h1.relu_backward_inplace(&cache.mask1);

        // Layer 1 — gradients accumulate from the hop-1 path (d_h1) and
        // the target path (d_ht), both through the shared W1 parameters.
        let mut d_w1_self = cache.x1.t_matmul(&d_h1);
        d_w1_self.add_scaled_inplace(&cache.x0.t_matmul(&d_ht), 1.0);
        let mut d_w1_neigh = cache.n1_mean.t_matmul(&d_h1);
        d_w1_neigh.add_scaled_inplace(&cache.t_mean.t_matmul(&d_ht), 1.0);
        let mut d_b1 = col_sums(&d_h1);
        for (a, b) in d_b1.iter_mut().zip(col_sums(&d_ht)) {
            *a += b;
        }
        debug_assert_eq!(cache.m * cache.s1 * cache.s2, cache.x1.rows() * cache.s2);

        (
            loss,
            Gradients {
                w1_self: d_w1_self,
                w1_neigh: d_w1_neigh,
                b1: d_b1,
                w2_self: d_w2_self,
                w2_neigh: d_w2_neigh,
                b2: d_b2,
                w_out: d_w_out,
                b_out: d_b_out,
            },
        )
    }

    /// SGD update: `param -= lr * grad`.
    pub fn apply_gradients(&mut self, grads: &Gradients, lr: f32) {
        self.w1_self.add_scaled_inplace(&grads.w1_self, -lr);
        self.w1_neigh.add_scaled_inplace(&grads.w1_neigh, -lr);
        for (p, g) in self.b1.iter_mut().zip(&grads.b1) {
            *p -= lr * g;
        }
        self.w2_self.add_scaled_inplace(&grads.w2_self, -lr);
        self.w2_neigh.add_scaled_inplace(&grads.w2_neigh, -lr);
        for (p, g) in self.b2.iter_mut().zip(&grads.b2) {
            *p -= lr * g;
        }
        self.w_out.add_scaled_inplace(&grads.w_out, -lr);
        for (p, g) in self.b_out.iter_mut().zip(&grads.b_out) {
            *p -= lr * g;
        }
    }

    /// Predicted class per target from a forward cache.
    pub fn predictions(cache: &ForwardCache) -> Vec<usize> {
        (0..cache.logits.rows())
            .map(|r| {
                let row = cache.logits.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }
}

fn col_sums(m: &Matrix) -> Vec<f32> {
    let mut out = vec![0.0; m.cols()];
    for r in 0..m.rows() {
        for (o, &v) in out.iter_mut().zip(m.row(r)) {
            *o += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::{plan_sample, Fanouts};
    use smartsage_graph::generate::{generate_power_law, PowerLawConfig};
    use smartsage_graph::NodeId;

    fn setup() -> (
        GraphSageModel,
        SampledBatch,
        Matrix,
        Matrix,
        Matrix,
        Vec<usize>,
    ) {
        let g = generate_power_law(&PowerLawConfig {
            nodes: 100,
            avg_degree: 6.0,
            seed: 50,
            ..PowerLawConfig::default()
        });
        let table = FeatureTable::new(6, 3, 1);
        let mut rng = Xoshiro256::seed_from_u64(10);
        let targets: Vec<NodeId> = (0..5u32).map(NodeId::new).collect();
        let plan = plan_sample(&g, &targets, &Fanouts::new(vec![3, 2]), &mut rng);
        let batch = plan.resolve(&g);
        let dims = ModelDims {
            features: 6,
            hidden1: 5,
            hidden2: 4,
            classes: 3,
        };
        let model = GraphSageModel::new(dims, &mut rng);
        let (x0, x1, x2) = model.gather_features(&batch, &table);
        let labels: Vec<usize> = batch.targets.iter().map(|&t| table.label(t)).collect();
        (model, batch, x0, x1, x2, labels)
    }

    #[test]
    fn forward_shapes() {
        let (model, batch, x0, x1, x2, _) = setup();
        let cache = model.forward(&batch, x0, x1, x2);
        assert_eq!(cache.logits.rows(), 5);
        assert_eq!(cache.logits.cols(), 3);
        assert_eq!(GraphSageModel::predictions(&cache).len(), 5);
    }

    #[test]
    fn gradients_match_numeric_differentiation() {
        let (mut model, batch, x0, x1, x2, labels) = setup();
        let cache = model.forward(&batch, x0.clone(), x1.clone(), x2.clone());
        let (_, grads) = model.loss_and_gradients(&cache, &labels);

        let eps = 2e-3f32;
        // Spot-check a handful of coordinates in every parameter tensor.
        let checks: Vec<(&str, usize, usize)> = vec![
            ("w1_self", 0, 0),
            ("w1_self", 3, 2),
            ("w1_neigh", 1, 4),
            ("w2_self", 2, 1),
            ("w2_neigh", 4, 3),
            ("w_out", 3, 2),
        ];
        for (name, r, c) in checks {
            let analytic = match name {
                "w1_self" => grads.w1_self.at(r, c),
                "w1_neigh" => grads.w1_neigh.at(r, c),
                "w2_self" => grads.w2_self.at(r, c),
                "w2_neigh" => grads.w2_neigh.at(r, c),
                "w_out" => grads.w_out.at(r, c),
                _ => unreachable!(),
            };
            let mut loss_at = |delta: f32| -> f32 {
                let field: &mut Matrix = match name {
                    "w1_self" => &mut model.w1_self,
                    "w1_neigh" => &mut model.w1_neigh,
                    "w2_self" => &mut model.w2_self,
                    "w2_neigh" => &mut model.w2_neigh,
                    "w_out" => &mut model.w_out,
                    _ => unreachable!(),
                };
                *field.at_mut(r, c) += delta;
                let cache = model.forward(&batch, x0.clone(), x1.clone(), x2.clone());
                let (loss, _) = model.loss_and_gradients(&cache, &labels);
                let field: &mut Matrix = match name {
                    "w1_self" => &mut model.w1_self,
                    "w1_neigh" => &mut model.w1_neigh,
                    "w2_self" => &mut model.w2_self,
                    "w2_neigh" => &mut model.w2_neigh,
                    "w_out" => &mut model.w_out,
                    _ => unreachable!(),
                };
                *field.at_mut(r, c) -= delta;
                loss
            };
            let numeric = (loss_at(eps) - loss_at(-eps)) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 2e-2_f32.max(0.2 * numeric.abs()),
                "{name}[{r},{c}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn bias_gradients_match_numeric() {
        let (mut model, batch, x0, x1, x2, labels) = setup();
        let cache = model.forward(&batch, x0.clone(), x1.clone(), x2.clone());
        let (_, grads) = model.loss_and_gradients(&cache, &labels);
        let eps = 2e-3f32;
        for idx in [0usize, 2] {
            let analytic = grads.b1[idx];
            model.b1[idx] += eps;
            let c1 = model.forward(&batch, x0.clone(), x1.clone(), x2.clone());
            let (lp, _) = model.loss_and_gradients(&c1, &labels);
            model.b1[idx] -= 2.0 * eps;
            let c2 = model.forward(&batch, x0.clone(), x1.clone(), x2.clone());
            let (lm, _) = model.loss_and_gradients(&c2, &labels);
            model.b1[idx] += eps;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 2e-2,
                "b1[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn sgd_steps_reduce_loss() {
        let (mut model, batch, x0, x1, x2, labels) = setup();
        let cache = model.forward(&batch, x0.clone(), x1.clone(), x2.clone());
        let (loss0, _) = model.loss_and_gradients(&cache, &labels);
        for _ in 0..30 {
            let cache = model.forward(&batch, x0.clone(), x1.clone(), x2.clone());
            let (_, grads) = model.loss_and_gradients(&cache, &labels);
            model.apply_gradients(&grads, 0.5);
        }
        let cache = model.forward(&batch, x0, x1, x2);
        let (loss1, _) = model.loss_and_gradients(&cache, &labels);
        assert!(
            loss1 < loss0 * 0.7,
            "loss should drop markedly: {loss0} -> {loss1}"
        );
    }
}
