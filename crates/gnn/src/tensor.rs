//! Minimal dense-matrix kernel set for GraphSAGE training.
//!
//! Row-major `f32` matrices with exactly the operations the SAGE layers
//! need. No BLAS dependency: the matrices in play (thousands of rows,
//! tens-to-hundreds of columns) are comfortably handled by a blocked
//! triple loop, and keeping the kernels local makes the backward-pass
//! tests (numeric gradient checking) self-contained.

use smartsage_sim::Xoshiro256;

/// A dense row-major matrix of `f32`.
///
/// # Example
///
/// ```
/// use smartsage_gnn::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::eye(2);
/// let c = a.matmul(&b);
/// assert_eq!(c.at(1, 0), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows x cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n x n` identity.
    pub fn eye(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Xavier-style random initialization with deterministic RNG.
    pub fn randn(rows: usize, cols: usize, rng: &mut Xoshiro256) -> Self {
        let scale = (2.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| (rng.normal() * scale) as f32)
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// `self @ other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ @ other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            for i in 0..self.cols {
                let a = self.data[r * self.cols + i];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[r * other.cols..(r + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ otherᵀ` without materializing the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..other.rows {
                let brow = &other.data[j * other.cols..(j + 1) * other.cols];
                let mut acc = 0.0;
                for (a, b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Elementwise sum with `other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// `self += other * scale` (used by SGD).
    pub fn add_scaled_inplace(&mut self, other: &Matrix, scale: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b * scale;
        }
    }

    /// Adds a bias row vector to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_bias_inplace(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (c, &b) in bias.iter().enumerate() {
                self.data[r * self.cols + c] += b;
            }
        }
    }

    /// In-place ReLU; returns the activation mask for the backward pass.
    pub fn relu_inplace(&mut self) -> Vec<bool> {
        self.data
            .iter_mut()
            .map(|v| {
                if *v > 0.0 {
                    true
                } else {
                    *v = 0.0;
                    false
                }
            })
            .collect()
    }

    /// Masks a gradient by a ReLU activation mask (backward of ReLU).
    pub fn relu_backward_inplace(&mut self, mask: &[bool]) {
        assert_eq!(mask.len(), self.data.len());
        for (v, &m) in self.data.iter_mut().zip(mask) {
            if !m {
                *v = 0.0;
            }
        }
    }

    /// Means of consecutive row groups: `self` has `groups * group_size`
    /// rows; returns a `groups x cols` matrix of group means.
    ///
    /// # Panics
    ///
    /// Panics if the row count is not `groups * group_size`.
    pub fn group_mean(&self, groups: usize, group_size: usize) -> Matrix {
        assert_eq!(self.rows, groups * group_size, "group shape mismatch");
        let mut out = Matrix::zeros(groups, self.cols);
        if group_size == 0 {
            return out;
        }
        let inv = 1.0 / group_size as f32;
        for g in 0..groups {
            for m in 0..group_size {
                let row = &self.data[(g * group_size + m) * self.cols..][..self.cols];
                let orow = &mut out.data[g * self.cols..(g + 1) * self.cols];
                for (o, &v) in orow.iter_mut().zip(row) {
                    *o += v * inv;
                }
            }
        }
        out
    }

    /// Backward of [`Matrix::group_mean`]: spreads each group's gradient
    /// row uniformly over its members.
    pub fn group_mean_backward(grad: &Matrix, group_size: usize) -> Matrix {
        let mut out = Matrix::zeros(grad.rows * group_size, grad.cols);
        if group_size == 0 {
            return out;
        }
        let inv = 1.0 / group_size as f32;
        for g in 0..grad.rows {
            let grow = &grad.data[g * grad.cols..(g + 1) * grad.cols];
            for m in 0..group_size {
                let orow = &mut out.data[(g * group_size + m) * grad.cols..][..grad.cols];
                for (o, &v) in orow.iter_mut().zip(grow) {
                    *o = v * inv;
                }
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

/// Softmax cross-entropy over rows: returns `(mean_loss, dlogits)`.
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows()` or a label is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(labels.len(), logits.rows(), "label count mismatch");
    let n = logits.rows();
    let c = logits.cols();
    let mut grad = Matrix::zeros(n, c);
    let mut loss = 0.0f64;
    for (i, &label) in labels.iter().enumerate() {
        assert!(label < c, "label {label} out of range {c}");
        let row = logits.row(i);
        let maxv = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - maxv).exp()).collect();
        let sum: f32 = exps.iter().sum();
        let p = exps[label] / sum;
        loss += -(p.max(1e-12) as f64).ln();
        for (j, &e) in exps.iter().enumerate() {
            let soft = e / sum;
            *grad.at_mut(i, j) = (soft - if j == label { 1.0 } else { 0.0 }) / n as f32;
        }
    }
    ((loss / n as f64) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_by_hand() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn transpose_products_match_explicit() {
        let mut rng = Xoshiro256::seed_from_u64(1);
        let a = Matrix::randn(4, 3, &mut rng);
        let b = Matrix::randn(4, 5, &mut rng);
        // aT @ b via t_matmul vs. manual transpose.
        let mut at = Matrix::zeros(3, 4);
        for r in 0..4 {
            for c in 0..3 {
                *at.at_mut(c, r) = a.at(r, c);
            }
        }
        let want = at.matmul(&b);
        let got = a.t_matmul(&b);
        for (x, y) in want.as_slice().iter().zip(got.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
        // a @ cT via matmul_t.
        let c = Matrix::randn(6, 3, &mut rng);
        let mut ct = Matrix::zeros(3, 6);
        for r in 0..6 {
            for k in 0..3 {
                *ct.at_mut(k, r) = c.at(r, k);
            }
        }
        let want2 = a.matmul(&ct);
        let got2 = a.matmul_t(&c);
        for (x, y) in want2.as_slice().iter().zip(got2.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn relu_roundtrip() {
        let mut m = Matrix::from_rows(&[&[1.0, -2.0], &[-0.5, 3.0]]);
        let mask = m.relu_inplace();
        assert_eq!(m.row(0), &[1.0, 0.0]);
        assert_eq!(mask, vec![true, false, false, true]);
        let mut g = Matrix::from_rows(&[&[5.0, 5.0], &[5.0, 5.0]]);
        g.relu_backward_inplace(&mask);
        assert_eq!(g.row(0), &[5.0, 0.0]);
        assert_eq!(g.row(1), &[0.0, 5.0]);
    }

    #[test]
    fn group_mean_and_backward_are_adjoint() {
        let mut rng = Xoshiro256::seed_from_u64(2);
        let x = Matrix::randn(6, 3, &mut rng); // 2 groups of 3
        let y = x.group_mean(2, 3);
        assert_eq!(y.rows(), 2);
        // Check one entry by hand.
        let want = (x.at(0, 1) + x.at(1, 1) + x.at(2, 1)) / 3.0;
        assert!((y.at(0, 1) - want).abs() < 1e-6);
        // Adjoint test: <Ax, g> == <x, A'g>.
        let g = Matrix::randn(2, 3, &mut rng);
        let lhs: f32 = y
            .as_slice()
            .iter()
            .zip(g.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let back = Matrix::group_mean_backward(&g, 3);
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-4, "adjoint mismatch {lhs} vs {rhs}");
    }

    #[test]
    fn softmax_ce_gradient_matches_numeric() {
        let mut rng = Xoshiro256::seed_from_u64(3);
        let logits = Matrix::randn(4, 3, &mut rng);
        let labels = vec![0, 2, 1, 1];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for r in 0..4 {
            for c in 0..3 {
                let mut plus = logits.clone();
                *plus.at_mut(r, c) += eps;
                let mut minus = logits.clone();
                *minus.at_mut(r, c) -= eps;
                let (lp, _) = softmax_cross_entropy(&plus, &labels);
                let (lm, _) = softmax_cross_entropy(&minus, &labels);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - grad.at(r, c)).abs() < 1e-3,
                    "grad[{r},{c}]: numeric {numeric} vs analytic {}",
                    grad.at(r, c)
                );
            }
        }
    }

    #[test]
    fn loss_decreases_toward_correct_label() {
        let good = Matrix::from_rows(&[&[10.0, 0.0]]);
        let bad = Matrix::from_rows(&[&[0.0, 10.0]]);
        let (lg, _) = softmax_cross_entropy(&good, &[0]);
        let (lb, _) = softmax_cross_entropy(&bad, &[0]);
        assert!(lg < 0.01);
        assert!(lb > 5.0);
    }

    #[test]
    fn bias_and_scaled_add() {
        let mut m = Matrix::zeros(2, 2);
        m.add_bias_inplace(&[1.0, 2.0]);
        assert_eq!(m.row(1), &[1.0, 2.0]);
        let g = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        m.add_scaled_inplace(&g, -0.5);
        assert_eq!(m.row(0), &[0.5, 1.5]);
        let s = m.add(&g);
        assert_eq!(s.row(0), &[1.5, 2.5]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn norm_is_euclidean() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((m.norm() - 5.0).abs() < 1e-6);
    }
}
