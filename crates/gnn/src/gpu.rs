//! GPU timing model for the consumer "GNN training" stage.
//!
//! The paper's platform trains on an NVIDIA Tesla T4 (§V). The pipeline
//! simulator only needs *how long* a mini-batch's forward+backward takes
//! and how many bytes must cross PCIe to the GPU — both derivable from
//! the batch dimensions. We use a roofline-style estimate: FLOPs at a
//! derated fraction of the T4's peak fp32 throughput, plus fixed kernel
//! launch overheads.

use crate::sampler::SampledBatch;
use smartsage_sim::SimDuration;

/// GPU and host→GPU link parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuParams {
    /// Peak fp32 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Achieved fraction of peak for these (skinny) GEMMs.
    pub efficiency: f64,
    /// Fixed overhead per kernel launch.
    pub kernel_overhead: SimDuration,
    /// Kernels per training step (fwd + bwd + optimizer).
    pub kernels_per_batch: u32,
    /// Host→GPU PCIe effective bandwidth (bytes/s).
    pub pcie_bytes_per_sec: u64,
    /// Host→GPU transfer latency.
    pub pcie_latency: SimDuration,
}

impl Default for GpuParams {
    /// Tesla T4 over PCIe gen3 x16: 8.1 TFLOPS fp32 at 25% efficiency,
    /// ~12 GB/s effective host link.
    fn default() -> Self {
        GpuParams {
            peak_flops: 8.1e12,
            efficiency: 0.25,
            kernel_overhead: SimDuration::from_micros(15),
            kernels_per_batch: 24,
            pcie_bytes_per_sec: 12_000_000_000,
            pcie_latency: SimDuration::from_micros(10),
        }
    }
}

/// Mini-batch dimensions from the pipeline's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchDims {
    /// Targets per batch.
    pub m: u64,
    /// Layer-1 fan-out.
    pub s1: u64,
    /// Layer-2 fan-out.
    pub s2: u64,
    /// Input feature dimension.
    pub features: u64,
    /// Hidden width (layers 1 and 2).
    pub hidden: u64,
    /// Output classes.
    pub classes: u64,
}

impl BatchDims {
    /// Dimensions implied by a resolved batch and feature/hidden sizes.
    pub fn of_batch(batch: &SampledBatch, features: u64, hidden: u64, classes: u64) -> BatchDims {
        let m = batch.targets.len() as u64;
        let s1 = batch.hops.first().map_or(1, |h| h.fanout as u64);
        let s2 = batch.hops.get(1).map_or(1, |h| h.fanout as u64);
        BatchDims {
            m,
            s1,
            s2,
            features,
            hidden,
            classes,
        }
    }

    /// Forward+backward FLOPs of the two-layer SAGE model
    /// (backward ≈ 2x forward for GEMM-dominated nets).
    pub fn flops(&self) -> f64 {
        let f = self.features as f64;
        let h = self.hidden as f64;
        let c = self.classes as f64;
        let m = self.m as f64;
        let n1 = m * self.s1 as f64;
        // Layer 1 over hop-1 nodes and targets: (X·W_self + mean·W_neigh).
        let l1 = 2.0 * (n1 + m) * f * h * 2.0;
        // Layer 2 over targets.
        let l2 = 2.0 * m * h * h * 2.0;
        // Output projection.
        let lo = 2.0 * m * h * c;
        (l1 + l2 + lo) * 3.0 // fwd + ~2x bwd
    }

    /// Bytes of input the batch ships to the GPU: gathered features for
    /// every sampled node + the subgraph structure.
    pub fn transfer_bytes(&self) -> u64 {
        let nodes = self.m + self.m * self.s1 + self.m * self.s1 * self.s2;
        nodes * self.features * 4 + (self.m * self.s1 + self.m * self.s1 * self.s2) * 8
    }
}

/// Cost of training one mini-batch on the GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingCost {
    /// GPU compute time (kernel launches + GEMM time).
    pub compute: SimDuration,
    /// Bytes to move host→GPU before compute can start.
    pub transfer_bytes: u64,
}

impl GpuParams {
    /// Estimates the training cost of a batch with the given dimensions.
    pub fn batch_cost(&self, dims: &BatchDims) -> TrainingCost {
        let gemm_secs = dims.flops() / (self.peak_flops * self.efficiency);
        let compute = SimDuration::from_secs_f64(gemm_secs)
            + self.kernel_overhead.mul_u64(self.kernels_per_batch as u64);
        TrainingCost {
            compute,
            transfer_bytes: dims.transfer_bytes(),
        }
    }

    /// Pure transfer delay of `bytes` over the host→GPU link (unloaded).
    pub fn transfer_delay(&self, bytes: u64) -> SimDuration {
        let occupancy = SimDuration::from_secs_f64(bytes as f64 / self.pcie_bytes_per_sec as f64);
        occupancy + self.pcie_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_dims() -> BatchDims {
        BatchDims {
            m: 1024,
            s1: 25,
            s2: 10,
            features: 602,
            hidden: 256,
            classes: 16,
        }
    }

    #[test]
    fn flops_scale_with_batch() {
        let d = paper_dims();
        let double = BatchDims { m: 2048, ..d };
        assert!((double.flops() / d.flops() - 2.0).abs() < 0.01);
    }

    #[test]
    fn paper_batch_lands_in_tens_of_milliseconds() {
        // A Reddit-like batch should take ~10-100 ms on a T4 — the
        // magnitude that makes DRAM-backed data preparation keep up but
        // mmap-backed preparation starve the GPU (Fig 7).
        let cost = GpuParams::default().batch_cost(&paper_dims());
        let ms = cost.compute.as_millis_f64();
        assert!((5.0..200.0).contains(&ms), "compute {ms} ms");
    }

    #[test]
    fn transfer_bytes_count_features_and_structure() {
        let d = BatchDims {
            m: 2,
            s1: 2,
            s2: 2,
            features: 4,
            hidden: 8,
            classes: 2,
        };
        // nodes = 2 + 4 + 8 = 14; features 14*4*4 = 224; ids (4+8)*8 = 96.
        assert_eq!(d.transfer_bytes(), 224 + 96);
    }

    #[test]
    fn transfer_delay_includes_latency() {
        let p = GpuParams::default();
        let d = p.transfer_delay(12_000_000); // 1 ms of occupancy
        assert!(d >= SimDuration::from_millis(1));
        assert!(d <= SimDuration::from_micros(1100));
    }

    #[test]
    fn of_batch_reads_fanouts() {
        use crate::sampler::{plan_sample, Fanouts};
        use smartsage_graph::generate::{generate_power_law, PowerLawConfig};
        use smartsage_graph::NodeId;
        use smartsage_sim::Xoshiro256;
        let g = generate_power_law(&PowerLawConfig {
            nodes: 50,
            avg_degree: 4.0,
            seed: 3,
            ..PowerLawConfig::default()
        });
        let mut rng = Xoshiro256::seed_from_u64(0);
        let batch = plan_sample(
            &g,
            &[NodeId::new(0), NodeId::new(1)],
            &Fanouts::new(vec![3, 2]),
            &mut rng,
        )
        .resolve(&g);
        let dims = BatchDims::of_batch(&batch, 16, 32, 4);
        assert_eq!(dims.m, 2);
        assert_eq!(dims.s1, 3);
        assert_eq!(dims.s2, 2);
    }
}
