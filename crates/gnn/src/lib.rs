//! GNN training substrate for the SmartSAGE reproduction.
//!
//! Implements the *functional* side of the paper's workload — real
//! GraphSAGE training, not a timing stub:
//!
//! * [`tensor::Matrix`] — the dense row-major `f32` matrix the layers are
//!   built on (matmul, transpose products, ReLU, softmax cross-entropy,
//!   grouped means), with gradients verified against numeric
//!   differentiation in tests.
//! * [`sampler`] — GraphSAGE neighbor sampling (paper Algorithm 1) as a
//!   two-phase design: [`sampler::plan_sample`] draws the random
//!   *positions* once into a [`sampler::SamplePlan`], and every system
//!   (DRAM, mmap, direct-I/O, ISP) prices and resolves the same plan — so the
//!   property "the ISP produces byte-identical subgraphs to the host
//!   sampler" holds by construction and is also asserted by tests.
//! * [`saint`] — the GraphSAINT random-walk sampler used by the paper's
//!   robustness study (Fig 20).
//! * [`model`] — a 2-layer GraphSAGE (mean aggregator) with full
//!   forward/backward and SGD.
//! * [`trainer`] — the mini-batch training loop (loss provably decreases
//!   on community-structured synthetic graphs).
//! * [`gpu`] — the GPU timing model (Tesla T4-class FLOPs, PCIe 3.0 x16)
//!   used by the pipeline simulator for the consumer "GNN training" stage.

#![forbid(unsafe_code)]

pub mod gpu;
pub mod model;
pub mod saint;
pub mod sampler;
pub mod tensor;
pub mod trainer;

pub use gpu::{GpuParams, TrainingCost};
pub use model::GraphSageModel;
pub use sampler::{merge_batches, sample_many_on, Fanouts, SamplePlan, SampleSpec, SampledBatch};
pub use tensor::Matrix;
