//! GraphSAINT random-walk sampling (paper §VI-F, Fig 20).
//!
//! GraphSAINT builds its training subgraph from random walks: from each
//! root, walk `length` steps, taking one uniformly random neighbor per
//! step. Relative to GraphSAGE fan-out sampling the access pattern is
//! *serial per walk* (each step depends on the previous one) and samples
//! exactly one neighbor per edge-list access — which the paper uses to
//! show SmartSAGE's ISP generalizes across sampling algorithms.
//!
//! The walk plan reuses [`SamplePlan`] with fan-out 1 per hop, so every
//! sampler and the ISP firmware replay walks identically.

use crate::sampler::{EdgeListAccess, Fanouts, HopPlan, SamplePlan};
use smartsage_graph::{CsrGraph, NodeId};
use smartsage_sim::Xoshiro256;

/// GraphSAINT random-walk configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkConfig {
    /// Number of root nodes per batch.
    pub roots: usize,
    /// Steps per walk.
    pub length: usize,
}

impl Default for WalkConfig {
    /// GraphSAINT-RW defaults per the paper's setting: 1024-root batches
    /// (matching the GraphSAGE mini-batch) with 4-step walks.
    fn default() -> Self {
        WalkConfig {
            roots: 1024,
            length: 4,
        }
    }
}

/// Fan-out view of a walk: `length` hops of fan-out 1.
pub fn walk_fanouts(cfg: &WalkConfig) -> Fanouts {
    Fanouts::new(vec![1; cfg.length.max(1)])
}

/// Plans random walks from `roots` (one access per step per walk).
///
/// Dead ends (zero-degree nodes) stay in place, mirroring the self-loop
/// convention of the fan-out sampler.
pub fn plan_random_walk(
    graph: &CsrGraph,
    roots: &[NodeId],
    length: usize,
    rng: &mut Xoshiro256,
) -> SamplePlan {
    let mut hops = Vec::with_capacity(length);
    let mut current: Vec<NodeId> = roots.to_vec();
    for _ in 0..length {
        let mut accesses = Vec::with_capacity(current.len());
        let mut next = Vec::with_capacity(current.len());
        for &node in &current {
            let degree = graph.degree(node);
            let positions = if degree == 0 {
                Vec::new()
            } else {
                vec![rng.range_u64(degree)]
            };
            let step_to = positions
                .first()
                .map(|&p| graph.neighbor(node, p))
                .unwrap_or(node);
            next.push(step_to);
            accesses.push(EdgeListAccess { node, positions });
        }
        hops.push(HopPlan {
            fanout: 1,
            accesses,
        });
        current = next;
    }
    SamplePlan {
        targets: roots.to_vec(),
        hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartsage_graph::generate::{generate_power_law, PowerLawConfig};

    fn graph() -> CsrGraph {
        generate_power_law(&PowerLawConfig {
            nodes: 300,
            avg_degree: 6.0,
            seed: 31,
            ..PowerLawConfig::default()
        })
    }

    #[test]
    fn walk_structure() {
        let g = graph();
        let roots: Vec<NodeId> = (0..10u32).map(NodeId::new).collect();
        let mut rng = Xoshiro256::seed_from_u64(8);
        let plan = plan_random_walk(&g, &roots, 4, &mut rng);
        assert_eq!(plan.hops.len(), 4);
        for hop in &plan.hops {
            assert_eq!(hop.fanout, 1);
            assert_eq!(hop.accesses.len(), 10);
        }
        assert_eq!(plan.num_accesses(), 40);
        assert_eq!(plan.num_sampled(), 40);
    }

    #[test]
    fn walks_are_connected_paths() {
        let g = graph();
        let roots: Vec<NodeId> = (5..15u32).map(NodeId::new).collect();
        let mut rng = Xoshiro256::seed_from_u64(2);
        let plan = plan_random_walk(&g, &roots, 3, &mut rng);
        let batch = plan.resolve(&g);
        // Step k's parents must equal step k-1's sampled nodes.
        for k in 1..batch.hops.len() {
            assert_eq!(batch.hops[k].parents, batch.hops[k - 1].neighbors);
        }
        // Each step moves along a real edge (or self-loops at dead ends).
        for hop in &batch.hops {
            for (i, &from) in hop.parents.iter().enumerate() {
                let to = hop.neighbors[i];
                assert!(
                    g.neighbors(from).contains(&to) || (g.degree(from) == 0 && to == from),
                    "invalid walk step {from}->{to}"
                );
            }
        }
    }

    #[test]
    fn dead_ends_stay_in_place() {
        let g = CsrGraph::from_edges(2, [(0, 1)]); // node 1 is a sink
        let mut rng = Xoshiro256::seed_from_u64(1);
        let plan = plan_random_walk(&g, &[NodeId::new(0)], 3, &mut rng);
        let batch = plan.resolve(&g);
        // Walk: 0 -> 1 -> 1 -> 1.
        assert_eq!(batch.hops[0].neighbors, vec![NodeId::new(1)]);
        assert_eq!(batch.hops[1].neighbors, vec![NodeId::new(1)]);
        assert_eq!(batch.hops[2].neighbors, vec![NodeId::new(1)]);
    }

    #[test]
    fn walk_fanouts_match_config() {
        let f = walk_fanouts(&WalkConfig {
            roots: 16,
            length: 5,
        });
        assert_eq!(f.as_slice(), &[1, 1, 1, 1, 1]);
        assert_eq!(WalkConfig::default().roots, 1024);
    }
}
